// Communication plans for the split-vertex 1-level trees (§5.3 / Alg. 4).
//
// For every split tree, leaves push partial aggregates to the root, the root
// scatter-reduces them and pushes the final aggregate back. The plan
// pre-computes, per partition × bin × peer, the local indices to gather from
// and scatter into, with matching order on both sides of every channel so a
// flat float payload of `count * feature_dim` can be exchanged with no
// per-message metadata.
//
// Trees are binned tree_id % num_bins; cd-r communicates only one bin per
// epoch (the "subset of split-vertices (through binning)" of §5.3), while
// cd-0 uses num_bins == 1 and syncs every tree every epoch.
#pragma once

#include <vector>

#include "partition/partition_setup.hpp"

namespace distgnn {

/// The four index lists of one partition for one (bin, peer) pair.
struct HaloPeerLists {
  std::vector<vid_t> send_leaf;  // my leaf locals whose partials go to this peer's roots
  std::vector<vid_t> recv_root;  // my root locals receiving this peer's leaf partials (reduce +=)
  std::vector<vid_t> send_root;  // my root locals whose totals return to this peer's leaves
  std::vector<vid_t> recv_leaf;  // my leaf locals overwritten by this peer's root totals
};

/// Plan for one partition: lists[bin][peer].
struct HaloPlan {
  int num_bins = 1;
  part_t num_parts = 0;
  std::vector<std::vector<HaloPeerLists>> lists;  // [bin][peer]

  const HaloPeerLists& peer(int bin, part_t p) const {
    return lists[static_cast<std::size_t>(bin)][static_cast<std::size_t>(p)];
  }

  /// Total vertices this partition sends in the leaf->root phase of a bin.
  std::size_t leaf_send_volume(int bin) const;
};

/// Builds plans for all partitions; result[p] is partition p's plan.
std::vector<HaloPlan> build_halo_plans(const PartitionedGraph& pg, int num_bins);

}  // namespace distgnn
