#include "partition/libra.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace distgnn {

namespace {

/// Fixed-capacity partition membership bitset; 256 partitions is double the
/// paper's largest run (128 sockets).
struct PartSet {
  static constexpr int kMaxParts = 256;
  std::uint64_t words[kMaxParts / 64] = {};

  bool test(part_t p) const { return (words[p >> 6] >> (p & 63)) & 1u; }
  void set(part_t p) { words[p >> 6] |= (std::uint64_t{1} << (p & 63)); }
  bool empty() const {
    for (const auto w : words)
      if (w != 0) return false;
    return true;
  }
};

EdgePartition make_result(part_t num_parts, std::size_t num_edges) {
  EdgePartition ep;
  ep.num_parts = num_parts;
  ep.edge_owner.assign(num_edges, kInvalidPart);
  ep.edges_per_part.assign(static_cast<std::size_t>(num_parts), 0);
  return ep;
}

/// Greedy vertex-cut rule shared by the full and incremental partitioners:
/// prefer the least-loaded partition that already holds BOTH endpoints (no
/// new clone at all), then one holding EITHER endpoint (one new clone), then
/// the globally least-loaded. Candidates at/above `capacity` fall through to
/// the next tier. The intersection preference is what lets naturally
/// clustered graphs (Proteins in the paper) partition with a small
/// replication factor.
part_t greedy_pick(const Edge& edge, const std::vector<PartSet>& member,
                   const std::vector<eid_t>& edges_per_part, eid_t capacity, part_t num_parts) {
  const PartSet& su = member[static_cast<std::size_t>(edge.src)];
  const PartSet& sv = member[static_cast<std::size_t>(edge.dst)];
  part_t best = kInvalidPart;
  eid_t best_load = std::numeric_limits<eid_t>::max();
  auto consider = [&](part_t p) {
    const eid_t load = edges_per_part[static_cast<std::size_t>(p)];
    if (load >= capacity) return;
    if (load < best_load) {
      best_load = load;
      best = p;
    }
  };
  auto scan = [&](auto word_of) {
    for (int w = 0; w < PartSet::kMaxParts / 64; ++w) {
      std::uint64_t bits = word_of(w);
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        consider(static_cast<part_t>(w * 64 + bit));
      }
    }
  };
  scan([&](int w) { return su.words[w] & sv.words[w]; });  // intersection
  if (best == kInvalidPart)
    scan([&](int w) { return su.words[w] | sv.words[w]; });  // union
  if (best == kInvalidPart)
    for (part_t p = 0; p < num_parts; ++p) consider(p);  // anywhere
  return best;
}

eid_t soft_capacity(std::size_t num_edges, part_t num_parts) {
  // Soft capacity keeps the greedy from piling a large cluster onto one
  // partition: candidates at/above capacity fall through to the next tier.
  // Feasible by construction (sum of loads < num_parts * capacity).
  return std::max<eid_t>(1, static_cast<eid_t>((static_cast<double>(num_edges) * 1.02) /
                                               static_cast<double>(num_parts)) +
                                1);
}

}  // namespace

EdgePartition partition_libra(const EdgeList& edges, part_t num_parts, std::uint64_t seed) {
  if (num_parts < 1 || num_parts > PartSet::kMaxParts)
    throw std::invalid_argument("partition_libra: num_parts out of range [1, 256]");
  EdgePartition ep = make_result(num_parts, edges.edges.size());
  std::vector<PartSet> member(static_cast<std::size_t>(edges.num_vertices));

  // Shuffled edge visiting order decorrelates the stream from generator
  // artifacts; the assignment itself is deterministic given the order.
  std::vector<eid_t> order(edges.edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<eid_t>(i);
  Rng rng(seed ^ 0x11b7a);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  const eid_t capacity = soft_capacity(edges.edges.size(), num_parts);

  for (const eid_t e : order) {
    const Edge& edge = edges.edges[static_cast<std::size_t>(e)];
    const part_t best = greedy_pick(edge, member, ep.edges_per_part, capacity, num_parts);
    ep.edge_owner[static_cast<std::size_t>(e)] = best;
    ++ep.edges_per_part[static_cast<std::size_t>(best)];
    member[static_cast<std::size_t>(edge.src)].set(best);
    member[static_cast<std::size_t>(edge.dst)].set(best);
  }
  return ep;
}

void extend_partition_libra(EdgePartition& partition, const EdgeList& post_edges,
                            const std::vector<eid_t>& removed_edge_indices,
                            std::size_t num_inserted) {
  const part_t num_parts = partition.num_parts;
  if (num_parts < 1 || num_parts > PartSet::kMaxParts)
    throw std::invalid_argument("extend_partition_libra: num_parts out of range [1, 256]");
  const std::size_t survivors = partition.edge_owner.size() - removed_edge_indices.size();
  if (survivors + num_inserted != post_edges.edges.size())
    throw std::invalid_argument("extend_partition_libra: edge counts do not reconcile");

  // Compact the owner array past the removals: surviving edges keep their
  // owner (feature shards stay put), removed ones drop out of the histogram.
  std::vector<bool> removed(partition.edge_owner.size(), false);
  for (const eid_t e : removed_edge_indices) removed[static_cast<std::size_t>(e)] = true;
  std::vector<part_t> owner;
  owner.reserve(post_edges.edges.size());
  for (std::size_t e = 0; e < partition.edge_owner.size(); ++e)
    if (!removed[e]) owner.push_back(partition.edge_owner[e]);

  // Rebuild membership and loads from the survivors only, so a partition
  // whose last clone of a vertex vanished no longer attracts its new edges.
  std::vector<PartSet> member(static_cast<std::size_t>(post_edges.num_vertices));
  std::vector<eid_t> edges_per_part(static_cast<std::size_t>(num_parts), 0);
  for (std::size_t e = 0; e < owner.size(); ++e) {
    const Edge& edge = post_edges.edges[e];
    const part_t p = owner[e];
    ++edges_per_part[static_cast<std::size_t>(p)];
    member[static_cast<std::size_t>(edge.src)].set(p);
    member[static_cast<std::size_t>(edge.dst)].set(p);
  }

  const eid_t capacity = soft_capacity(post_edges.edges.size(), num_parts);
  for (std::size_t e = survivors; e < post_edges.edges.size(); ++e) {
    const Edge& edge = post_edges.edges[e];
    const part_t best = greedy_pick(edge, member, edges_per_part, capacity, num_parts);
    owner.push_back(best);
    ++edges_per_part[static_cast<std::size_t>(best)];
    member[static_cast<std::size_t>(edge.src)].set(best);
    member[static_cast<std::size_t>(edge.dst)].set(best);
  }

  partition.edge_owner = std::move(owner);
  partition.edges_per_part = std::move(edges_per_part);
}

EdgePartition partition_random(const EdgeList& edges, part_t num_parts, std::uint64_t seed) {
  if (num_parts < 1) throw std::invalid_argument("partition_random: num_parts must be >= 1");
  EdgePartition ep = make_result(num_parts, edges.edges.size());
  Rng rng(seed ^ 0xabad1dea);
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    const part_t p = static_cast<part_t>(rng.next_below(static_cast<std::uint64_t>(num_parts)));
    ep.edge_owner[e] = p;
    ++ep.edges_per_part[static_cast<std::size_t>(p)];
  }
  return ep;
}

EdgePartition partition_source_hash(const EdgeList& edges, part_t num_parts) {
  if (num_parts < 1) throw std::invalid_argument("partition_source_hash: num_parts must be >= 1");
  EdgePartition ep = make_result(num_parts, edges.edges.size());
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    // Fibonacci hash of the source id.
    const auto h = static_cast<std::uint64_t>(edges.edges[e].src) * 0x9e3779b97f4a7c15ULL;
    const part_t p = static_cast<part_t>(h % static_cast<std::uint64_t>(num_parts));
    ep.edge_owner[e] = p;
    ++ep.edges_per_part[static_cast<std::size_t>(p)];
  }
  return ep;
}

EdgePartition partition_range(const EdgeList& edges, part_t num_parts) {
  if (num_parts < 1) throw std::invalid_argument("partition_range: num_parts must be >= 1");
  EdgePartition ep = make_result(num_parts, edges.edges.size());
  const vid_t span = (edges.num_vertices + num_parts - 1) / num_parts;
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    const part_t p = static_cast<part_t>(edges.edges[e].src / span);
    ep.edge_owner[e] = p;
    ++ep.edges_per_part[static_cast<std::size_t>(p)];
  }
  return ep;
}

EdgePartition partition_edges(const EdgeList& edges, part_t num_parts, PartitionStrategy strategy,
                              std::uint64_t seed) {
  switch (strategy) {
    case PartitionStrategy::kLibra: return partition_libra(edges, num_parts, seed);
    case PartitionStrategy::kRandom: return partition_random(edges, num_parts, seed);
    case PartitionStrategy::kSourceHash: return partition_source_hash(edges, num_parts);
    case PartitionStrategy::kRange: return partition_range(edges, num_parts);
  }
  throw std::invalid_argument("partition_edges: unknown strategy");
}

}  // namespace distgnn
