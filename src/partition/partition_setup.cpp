#include "partition/partition_setup.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace distgnn {

part_t PartitionedGraph::partition_of_local_id(vid_t global_local) const {
  const auto it = std::upper_bound(vertex_map.begin(), vertex_map.end(), global_local);
  if (it == vertex_map.begin() || it == vertex_map.end())
    throw std::out_of_range("partition_of_local_id: id outside vertex_map");
  return static_cast<part_t>(it - vertex_map.begin() - 1);
}

PartitionedGraph build_partitions(const EdgeList& edges, const EdgePartition& ep,
                                  std::uint64_t seed) {
  if (ep.edge_owner.size() != edges.edges.size())
    throw std::invalid_argument("build_partitions: owner array size mismatch");

  PartitionedGraph pg;
  pg.num_parts = ep.num_parts;
  pg.num_global_vertices = edges.num_vertices;
  pg.parts.resize(static_cast<std::size_t>(ep.num_parts));

  // Pass 1: per-vertex partition membership (sorted, unique).
  std::vector<std::vector<part_t>> member(static_cast<std::size_t>(edges.num_vertices));
  auto note = [&](vid_t v, part_t p) {
    auto& parts = member[static_cast<std::size_t>(v)];
    if (std::find(parts.begin(), parts.end(), p) == parts.end()) parts.push_back(p);
  };
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    note(edges.edges[e].src, ep.edge_owner[e]);
    note(edges.edges[e].dst, ep.edge_owner[e]);
  }
  for (auto& parts : member) std::sort(parts.begin(), parts.end());

  // Global in-degree (the GCN normalizer must be partition-independent).
  std::vector<eid_t> global_in_degree(static_cast<std::size_t>(edges.num_vertices), 0);
  for (const Edge& e : edges.edges) ++global_in_degree[static_cast<std::size_t>(e.dst)];

  // Pass 2: local vertex sets in ascending global order; split-tree ids in
  // ascending global-vertex order; root clone chosen by seeded hash.
  std::vector<std::unordered_map<vid_t, vid_t>> local_of(
      static_cast<std::size_t>(ep.num_parts));
  for (vid_t gv = 0; gv < edges.num_vertices; ++gv) {
    const auto& parts = member[static_cast<std::size_t>(gv)];
    if (parts.empty()) continue;
    const bool split = parts.size() > 1;
    std::int64_t tree = -1;
    part_t root_part = kInvalidPart;
    if (split) {
      tree = pg.num_split_trees++;
      const std::uint64_t h = (static_cast<std::uint64_t>(gv) + seed) * 0x9e3779b97f4a7c15ULL;
      root_part = parts[h % parts.size()];
    }
    for (const part_t p : parts) {
      LocalPartition& lp = pg.parts[static_cast<std::size_t>(p)];
      const vid_t local = lp.num_vertices++;
      local_of[static_cast<std::size_t>(p)].emplace(gv, local);
      lp.global_ids.push_back(gv);
      lp.global_in_degree.push_back(global_in_degree[static_cast<std::size_t>(gv)]);
      lp.is_split.push_back(split ? 1 : 0);
      lp.is_root.push_back(split && p == root_part ? 1 : 0);
      lp.tree_id.push_back(tree);
      lp.owns_label.push_back(!split || p == root_part ? 1 : 0);
    }
  }

  // Pass 3: remap edges into local indices.
  for (part_t p = 0; p < ep.num_parts; ++p) {
    LocalPartition& lp = pg.parts[static_cast<std::size_t>(p)];
    lp.id = p;
    lp.edges.num_vertices = lp.num_vertices;
    lp.edges.edges.reserve(static_cast<std::size_t>(ep.edges_per_part[static_cast<std::size_t>(p)]));
  }
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    const part_t p = ep.edge_owner[e];
    const auto& map = local_of[static_cast<std::size_t>(p)];
    pg.parts[static_cast<std::size_t>(p)].edges.add(map.at(edges.edges[e].src),
                                                    map.at(edges.edges[e].dst));
  }

  // vertex_map: consecutive global local-ID ranges, partition 0 first (§5.2).
  pg.vertex_map.resize(static_cast<std::size_t>(ep.num_parts) + 1, 0);
  for (part_t p = 0; p < ep.num_parts; ++p)
    pg.vertex_map[static_cast<std::size_t>(p) + 1] =
        pg.vertex_map[static_cast<std::size_t>(p)] + pg.parts[static_cast<std::size_t>(p)].num_vertices;
  return pg;
}

DenseMatrix gather_local_features(const LocalPartition& part, ConstMatrixView global_features) {
  DenseMatrix out(static_cast<std::size_t>(part.num_vertices), global_features.cols);
  for (vid_t local = 0; local < part.num_vertices; ++local) {
    const real_t* src = global_features.row(static_cast<std::size_t>(part.global_ids[static_cast<std::size_t>(local)]));
    real_t* dst = out.row(static_cast<std::size_t>(local));
    std::copy(src, src + global_features.cols, dst);
  }
  return out;
}

std::vector<int> gather_local_labels(const LocalPartition& part, const std::vector<int>& labels) {
  std::vector<int> out(static_cast<std::size_t>(part.num_vertices));
  for (vid_t local = 0; local < part.num_vertices; ++local)
    out[static_cast<std::size_t>(local)] =
        labels[static_cast<std::size_t>(part.global_ids[static_cast<std::size_t>(local)])];
  return out;
}

std::vector<std::uint8_t> gather_local_mask(const LocalPartition& part,
                                            const std::vector<std::uint8_t>& mask) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(part.num_vertices));
  for (vid_t local = 0; local < part.num_vertices; ++local) {
    const auto li = static_cast<std::size_t>(local);
    out[li] = mask[static_cast<std::size_t>(part.global_ids[li])] & part.owns_label[li];
  }
  return out;
}

}  // namespace distgnn
