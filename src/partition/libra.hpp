// Libra-style vertex-cut graph partitioning (§5.1 of the paper, after
// Xie et al., "Distributed Power-law Graph Computing").
//
// Edges are distributed over partitions; a vertex whose edges land in
// several partitions is *split* and replicated there. Libra's greedy rule
// assigns each edge to the least-loaded partition among those already
// holding one of its endpoints (falling back to the globally least-loaded),
// which keeps the replication factor low on power-law graphs while producing
// near-perfectly edge-balanced partitions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.hpp"
#include "util/types.hpp"

namespace distgnn {

/// Result of any edge partitioner: the owning partition of every edge.
struct EdgePartition {
  part_t num_parts = 0;
  std::vector<part_t> edge_owner;       // |E| entries
  std::vector<eid_t> edges_per_part;    // histogram, num_parts entries
};

enum class PartitionStrategy {
  kLibra,       // greedy vertex-cut (the paper's choice)
  kRandom,      // uniform random edge assignment (worst-case replication)
  kSourceHash,  // hash(src) — an edge-cut-like 1D baseline
  kRange,       // contiguous source ranges — locality-preserving 1D baseline
};

/// Partitions `edges` into `num_parts` using the Libra greedy vertex-cut.
/// Deterministic for a fixed seed (ties are broken by partition index).
EdgePartition partition_libra(const EdgeList& edges, part_t num_parts, std::uint64_t seed = 0);

/// Incremental libra for streaming graph updates (src/stream). `partition`
/// is aligned with the PRE-delta edge list; `post_edges` is the post-delta
/// list: surviving edges in original order, then `num_inserted` appended
/// ones. Removed edges (given by their pre-delta indices) drop out of the
/// owner array and histogram; vertex membership is rebuilt from the
/// survivors; inserted edges are then greedy-assigned in order with the same
/// intersection -> union -> anywhere rule and a soft capacity sized to the
/// grown edge count. O(|E|) per call — full repartitioning quality erodes
/// over many deltas, but owners of surviving edges never move, which is what
/// keeps a live ShardedServer's feature shards stable across a delta.
void extend_partition_libra(EdgePartition& partition, const EdgeList& post_edges,
                            const std::vector<eid_t>& removed_edge_indices,
                            std::size_t num_inserted);

/// Baseline partitioners for comparison benches.
EdgePartition partition_random(const EdgeList& edges, part_t num_parts, std::uint64_t seed = 0);
EdgePartition partition_source_hash(const EdgeList& edges, part_t num_parts);
EdgePartition partition_range(const EdgeList& edges, part_t num_parts);

EdgePartition partition_edges(const EdgeList& edges, part_t num_parts, PartitionStrategy strategy,
                              std::uint64_t seed = 0);

}  // namespace distgnn
