#include "partition/partition_stats.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace distgnn {

namespace {

/// Per-vertex partition membership recomputed from the edge assignment.
std::vector<std::vector<part_t>> memberships(const EdgeList& edges, const EdgePartition& ep) {
  std::vector<std::vector<part_t>> member(static_cast<std::size_t>(edges.num_vertices));
  auto note = [&](vid_t v, part_t p) {
    auto& parts = member[static_cast<std::size_t>(v)];
    if (std::find(parts.begin(), parts.end(), p) == parts.end()) parts.push_back(p);
  };
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    const part_t p = ep.edge_owner[e];
    note(edges.edges[e].src, p);
    note(edges.edges[e].dst, p);
  }
  return member;
}

}  // namespace

PartitionQuality evaluate_partition(const EdgeList& edges, const EdgePartition& ep) {
  if (ep.edge_owner.size() != edges.edges.size())
    throw std::invalid_argument("evaluate_partition: owner array size mismatch");
  PartitionQuality q;

  const auto member = memberships(edges, ep);
  std::uint64_t clones = 0;
  std::vector<vid_t> part_vertices(static_cast<std::size_t>(ep.num_parts), 0);
  std::vector<vid_t> part_split(static_cast<std::size_t>(ep.num_parts), 0);
  for (const auto& parts : member) {
    if (parts.empty()) continue;
    ++q.touched_vertices;
    clones += parts.size();
    if (parts.size() > 1) ++q.split_vertices;
    for (const part_t p : parts) {
      ++part_vertices[static_cast<std::size_t>(p)];
      if (parts.size() > 1) ++part_split[static_cast<std::size_t>(p)];
    }
  }
  if (q.touched_vertices > 0)
    q.replication_factor = static_cast<double>(clones) / static_cast<double>(q.touched_vertices);

  if (ep.num_parts > 0 && !edges.edges.empty()) {
    const eid_t max_edges = *std::max_element(ep.edges_per_part.begin(), ep.edges_per_part.end());
    const double mean = static_cast<double>(edges.edges.size()) / static_cast<double>(ep.num_parts);
    q.edge_balance = static_cast<double>(max_edges) / mean;
  }

  double share_sum = 0.0;
  int populated = 0;
  for (part_t p = 0; p < ep.num_parts; ++p) {
    if (part_vertices[static_cast<std::size_t>(p)] == 0) continue;
    share_sum += static_cast<double>(part_split[static_cast<std::size_t>(p)]) /
                 static_cast<double>(part_vertices[static_cast<std::size_t>(p)]);
    ++populated;
  }
  if (populated > 0) q.split_vertex_share = share_sum / populated;
  return q;
}

}  // namespace distgnn
