// Quality metrics of an edge partition: replication factor (Table 4 of the
// paper), edge balance and split-vertex counts (Table 6's bottom row).
#pragma once

#include "graph/coo.hpp"
#include "partition/libra.hpp"

namespace distgnn {

struct PartitionQuality {
  /// Average number of clones per *touched* vertex: Σ_v |partitions(v)| / |V'|
  /// where V' are vertices with at least one edge. 1.0 means no splitting.
  double replication_factor = 1.0;
  /// max(edges per partition) / mean(edges per partition); 1.0 is perfect.
  double edge_balance = 1.0;
  /// Number of vertices present in more than one partition.
  vid_t split_vertices = 0;
  /// Vertices with at least one edge (the replication denominator).
  vid_t touched_vertices = 0;
  /// Fraction of each partition's vertices that are split, averaged over
  /// partitions (the "Split-vertices/partition %" row of Table 6).
  double split_vertex_share = 0.0;
};

PartitionQuality evaluate_partition(const EdgeList& edges, const EdgePartition& ep);

}  // namespace distgnn
