#include "partition/halo_plan.hpp"

#include <stdexcept>

namespace distgnn {

std::size_t HaloPlan::leaf_send_volume(int bin) const {
  std::size_t total = 0;
  for (const auto& pl : lists[static_cast<std::size_t>(bin)]) total += pl.send_leaf.size();
  return total;
}

std::vector<HaloPlan> build_halo_plans(const PartitionedGraph& pg, int num_bins) {
  if (num_bins < 1) throw std::invalid_argument("build_halo_plans: num_bins must be >= 1");

  std::vector<HaloPlan> plans(static_cast<std::size_t>(pg.num_parts));
  for (auto& plan : plans) {
    plan.num_bins = num_bins;
    plan.num_parts = pg.num_parts;
    plan.lists.assign(static_cast<std::size_t>(num_bins),
                      std::vector<HaloPeerLists>(static_cast<std::size_t>(pg.num_parts)));
  }

  // Collect clone locations per tree: (partition, local index, is_root).
  struct Clone {
    part_t part;
    vid_t local;
    bool root;
  };
  std::vector<std::vector<Clone>> tree_clones(static_cast<std::size_t>(pg.num_split_trees));
  for (const LocalPartition& lp : pg.parts) {
    for (vid_t local = 0; local < lp.num_vertices; ++local) {
      const auto li = static_cast<std::size_t>(local);
      if (!lp.is_split[li]) continue;
      tree_clones[static_cast<std::size_t>(lp.tree_id[li])].push_back(
          {lp.id, local, lp.is_root[li] != 0});
    }
  }

  // Ascending tree order on both sides of every channel keeps the gather and
  // scatter index lists aligned.
  for (std::int64_t t = 0; t < pg.num_split_trees; ++t) {
    const auto& clones = tree_clones[static_cast<std::size_t>(t)];
    const int bin = static_cast<int>(t % num_bins);
    const Clone* root = nullptr;
    for (const Clone& c : clones)
      if (c.root) root = &c;
    if (root == nullptr)
      throw std::logic_error("build_halo_plans: split tree without a root clone");

    for (const Clone& leaf : clones) {
      if (leaf.root) continue;
      auto& leaf_plan = plans[static_cast<std::size_t>(leaf.part)].lists[static_cast<std::size_t>(bin)];
      auto& root_plan = plans[static_cast<std::size_t>(root->part)].lists[static_cast<std::size_t>(bin)];
      leaf_plan[static_cast<std::size_t>(root->part)].send_leaf.push_back(leaf.local);
      root_plan[static_cast<std::size_t>(leaf.part)].recv_root.push_back(root->local);
      root_plan[static_cast<std::size_t>(leaf.part)].send_root.push_back(root->local);
      leaf_plan[static_cast<std::size_t>(root->part)].recv_leaf.push_back(leaf.local);
    }
  }
  return plans;
}

}  // namespace distgnn
