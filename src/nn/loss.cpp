#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace distgnn {

double SoftmaxCrossEntropy::forward(ConstMatrixView logits, const std::vector<int>& labels,
                                    const std::vector<std::uint8_t>& mask,
                                    std::int64_t normalization) {
  if (labels.size() != logits.rows || mask.size() != logits.rows)
    throw std::invalid_argument("SoftmaxCrossEntropy: labels/mask size mismatch");
  probs_.resize_discard(logits.rows, logits.cols);
  labels_ = labels;
  mask_ = mask;

  masked_count_ = 0;
  for (const auto m : mask)
    if (m) ++masked_count_;
  divisor_ = static_cast<double>(normalization > 0 ? normalization
                                                   : std::max<std::int64_t>(1, masked_count_));

  double loss_sum = 0.0;
  const std::size_t n = logits.rows, c = logits.cols;
#pragma omp parallel for schedule(static) reduction(+ : loss_sum)
  for (std::size_t v = 0; v < n; ++v) {
    const real_t* row = logits.row(v);
    real_t* p = probs_.row(v);
    real_t maxv = row[0];
    for (std::size_t j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
    real_t denom = 0;
    for (std::size_t j = 0; j < c; ++j) {
      p[j] = std::exp(row[j] - maxv);
      denom += p[j];
    }
    const real_t inv = 1.0f / denom;
    for (std::size_t j = 0; j < c; ++j) p[j] *= inv;
    if (mask_[v]) {
      const int label = labels_[v];
      if (label < 0 || static_cast<std::size_t>(label) >= c)
        continue;  // defensive: unlabeled vertices contribute nothing
      loss_sum += -std::log(std::max(1e-12, static_cast<double>(p[static_cast<std::size_t>(label)])));
    }
  }
  return loss_sum / divisor_;
}

void SoftmaxCrossEntropy::backward(MatrixView dLogits) const {
  if (dLogits.rows != probs_.rows() || dLogits.cols != probs_.cols())
    throw std::invalid_argument("SoftmaxCrossEntropy::backward: shape mismatch");
  const std::size_t n = dLogits.rows, c = dLogits.cols;
  const real_t scale = static_cast<real_t>(1.0 / divisor_);
#pragma omp parallel for schedule(static)
  for (std::size_t v = 0; v < n; ++v) {
    real_t* d = dLogits.row(v);
    if (!mask_[v]) {
      for (std::size_t j = 0; j < c; ++j) d[j] = 0;
      continue;
    }
    const real_t* p = probs_.row(v);
    for (std::size_t j = 0; j < c; ++j) d[j] = p[j] * scale;
    const int label = labels_[v];
    if (label >= 0 && static_cast<std::size_t>(label) < c)
      d[static_cast<std::size_t>(label)] -= scale;
  }
}

}  // namespace distgnn
