// Masked softmax cross-entropy for vertex classification. Loss is averaged
// over the masked vertices; in distributed runs the trainer passes the
// *global* masked count so that summing gradients over ranks with AllReduce
// reproduces the exact single-socket gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace distgnn {

class SoftmaxCrossEntropy {
 public:
  /// Computes mean NLL over rows where mask != 0. `normalization` overrides
  /// the divisor (use the global count across ranks); 0 means "local count".
  /// Caches probabilities for backward. Returns the *sum* divided by the
  /// divisor, i.e. sum_local / normalization.
  double forward(ConstMatrixView logits, const std::vector<int>& labels,
                 const std::vector<std::uint8_t>& mask, std::int64_t normalization = 0);

  /// dLogits[v] = (softmax(v) - onehot(label_v)) / divisor for masked rows,
  /// zero elsewhere.
  void backward(MatrixView dLogits) const;

  std::int64_t last_masked_count() const { return masked_count_; }

 private:
  DenseMatrix probs_;
  std::vector<int> labels_;
  std::vector<std::uint8_t> mask_;
  std::int64_t masked_count_ = 0;
  double divisor_ = 1.0;
};

}  // namespace distgnn
