#include "nn/optim.hpp"

#include <cmath>
#include <stdexcept>

namespace distgnn {

void Sgd::step(std::span<ParamRef> params) {
  if (momentum_ != 0.0 && velocity_.size() != params.size()) {
    velocity_.clear();
    for (const ParamRef& p : params) velocity_.emplace_back(p.size, real_t{0});
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    const ParamRef& p = params[k];
    for (std::size_t i = 0; i < p.size; ++i) {
      real_t g = p.grad[i] + static_cast<real_t>(weight_decay_) * p.value[i];
      if (momentum_ != 0.0) {
        real_t& vel = velocity_[k][i];
        vel = static_cast<real_t>(momentum_) * vel + g;
        g = vel;
      }
      p.value[i] -= static_cast<real_t>(lr_) * g;
    }
  }
}

void Adam::step(std::span<ParamRef> params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const ParamRef& p : params) {
      m_.emplace_back(p.size, real_t{0});
      v_.emplace_back(p.size, real_t{0});
    }
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    const ParamRef& p = params[k];
    for (std::size_t i = 0; i < p.size; ++i) {
      const real_t g = p.grad[i] + static_cast<real_t>(weight_decay_) * p.value[i];
      real_t& m = m_[k][i];
      real_t& v = v_[k][i];
      m = static_cast<real_t>(beta1_) * m + static_cast<real_t>(1.0 - beta1_) * g;
      v = static_cast<real_t>(beta2_) * v + static_cast<real_t>(1.0 - beta2_) * g * g;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p.value[i] -= static_cast<real_t>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace distgnn
