// Fully connected layer with manual backward. Parameters and their gradients
// are exposed as flat spans so the distributed trainer can AllReduce them.
#pragma once

#include <span>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace distgnn {

class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  /// Y = X W + b. Caches X for backward.
  void forward(ConstMatrixView X, MatrixView Y);

  /// Given dY, accumulates dW/db and writes dX (may be empty to skip input
  /// gradient at the first layer).
  void backward(ConstMatrixView dY, MatrixView dX);

  void zero_grad();

  std::size_t in_dim() const { return weight_.rows(); }
  std::size_t out_dim() const { return weight_.cols(); }

  DenseMatrix& weight() { return weight_; }
  DenseMatrix& bias() { return bias_; }
  DenseMatrix& weight_grad() { return weight_grad_; }
  DenseMatrix& bias_grad() { return bias_grad_; }
  const DenseMatrix& weight() const { return weight_; }
  const DenseMatrix& bias() const { return bias_; }

  /// Number of scalar parameters (weights + bias).
  std::size_t num_parameters() const { return weight_.size() + bias_.size(); }

 private:
  DenseMatrix weight_;       // in x out
  DenseMatrix bias_;         // 1 x out
  DenseMatrix weight_grad_;  // in x out
  DenseMatrix bias_grad_;    // 1 x out
  DenseMatrix cached_input_; // last forward X (copied; modest sizes)
};

}  // namespace distgnn
