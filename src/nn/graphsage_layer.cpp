#include "nn/graphsage_layer.hpp"

#include <stdexcept>

namespace distgnn {

GraphSageLayer::GraphSageLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu, Rng& rng)
    : linear_(in_dim, out_dim, rng), apply_relu_(apply_relu) {}

void GraphSageLayer::forward_from_aggregate(ConstMatrixView H, ConstMatrixView agg,
                                            ConstMatrixView inv_norm, MatrixView Y) {
  if (H.rows != agg.rows || H.cols != agg.cols)
    throw std::invalid_argument("GraphSageLayer: H/agg shape mismatch");
  if (inv_norm.rows != H.rows || inv_norm.cols != 1)
    throw std::invalid_argument("GraphSageLayer: inv_norm must be n x 1");

  const std::size_t n = H.rows, d = H.cols;
  combined_.resize_discard(n, d);
  inv_norm_.resize_discard(n, 1);
#pragma omp parallel for schedule(static)
  for (std::size_t v = 0; v < n; ++v) {
    const real_t s = inv_norm.at(v, 0);
    inv_norm_.at(v, 0) = s;
    const real_t* h = H.row(v);
    const real_t* a = agg.row(v);
    real_t* c = combined_.row(v);
#pragma omp simd
    for (std::size_t j = 0; j < d; ++j) c[j] = (a[j] + h[j]) * s;
  }

  if (apply_relu_) {
    z_.resize_discard(n, linear_.out_dim());
    linear_.forward(combined_.cview(), z_.view());
    relu_.forward(z_.cview(), Y);
  } else {
    linear_.forward(combined_.cview(), Y);
  }
}

void GraphSageLayer::backward_to_scaled(ConstMatrixView dY, MatrixView dscaled) {
  if (dscaled.rows != combined_.rows() || dscaled.cols != combined_.cols())
    throw std::invalid_argument("GraphSageLayer::backward_to_scaled: dscaled shape mismatch");

  ConstMatrixView upstream = dY;
  if (apply_relu_) {
    dz_.resize_discard(dY.rows, dY.cols);
    relu_.backward(dY, dz_.view());
    upstream = dz_.cview();
  }
  // dcombined lands in dscaled, then is scaled by inv_norm in place.
  linear_.backward(upstream, dscaled);
  const std::size_t n = dscaled.rows, d = dscaled.cols;
#pragma omp parallel for schedule(static)
  for (std::size_t v = 0; v < n; ++v) {
    const real_t s = inv_norm_.at(v, 0);
    real_t* row = dscaled.row(v);
#pragma omp simd
    for (std::size_t j = 0; j < d; ++j) row[j] *= s;
  }
}

void GraphSageLayer::collect_params(std::vector<ParamRef>& out) {
  out.push_back({linear_.weight().data(), linear_.weight_grad().data(), linear_.weight().size()});
  out.push_back({linear_.bias().data(), linear_.bias_grad().data(), linear_.bias().size()});
}

}  // namespace distgnn
