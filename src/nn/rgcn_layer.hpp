// Relational GCN layer (Schlichtkrull et al.), the model Figure 2 runs on
// the AM dataset ("RGCN-hetero"):
//
//   h'_v = act(  W_self h_v  +  Σ_r (1/c_{v,r}) Σ_{u ∈ N_r(v)} W_r h_u  + b )
//
// where N_r(v) is v's in-neighbourhood under relation r and c_{v,r} its
// size. Like GraphSageLayer, the aggregation itself is external: the caller
// feeds one aggregate matrix per relation (computed with the optimized AP on
// the relation's CSR), and the layer owns the per-relation linear
// transforms and the backward bookkeeping.
#pragma once

#include <vector>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optim.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace distgnn {

class RgcnLayer {
 public:
  RgcnLayer(std::size_t in_dim, std::size_t out_dim, int num_relations, bool apply_relu, Rng& rng);

  /// H: (n x in) inputs; aggs[r]: (n x in) neighbourhood sums per relation;
  /// inv_norms[r]: (n x 1) per-vertex 1/max(1, c_{v,r}); Y: (n x out).
  void forward_from_aggregates(ConstMatrixView H, const std::vector<DenseMatrix>& aggs,
                               const std::vector<DenseMatrix>& inv_norms, MatrixView Y);

  /// Backward from dY. dscaled_rel[r] receives inv_norm_r ⊙ (dY W_rᵀ) — the
  /// gradient w.r.t. relation r's aggregate — and dH_self receives the
  /// gradient through the self path (dY W_selfᵀ). The caller completes
  ///   dH = dH_self + Σ_r A_rᵀ dscaled_rel[r].
  /// Parameter gradients accumulate internally.
  void backward(ConstMatrixView dY, std::vector<DenseMatrix>& dscaled_rel, MatrixView dH_self);

  void zero_grad();
  void collect_params(std::vector<ParamRef>& out);

  std::size_t in_dim() const { return self_.in_dim(); }
  std::size_t out_dim() const { return self_.out_dim(); }
  int num_relations() const { return static_cast<int>(relation_.size()); }

 private:
  struct RelationWeight {
    DenseMatrix w;     // in x out
    DenseMatrix grad;  // in x out
  };

  Linear self_;                           // W_self (owns the bias)
  std::vector<RelationWeight> relation_;  // W_r
  Relu relu_;
  bool apply_relu_;
  std::vector<DenseMatrix> scaled_aggs_;  // inv_norm_r ⊙ agg_r, cached per forward
  std::vector<DenseMatrix> inv_norms_;    // cached normalizers
  DenseMatrix dz_;                        // backward scratch
};

}  // namespace distgnn
