// First-order optimizers over flat parameter references. The trainer collects
// ParamRefs from every layer; the same list is what gets AllReduced in the
// distributed data-parallel step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace distgnn {

struct ParamRef {
  real_t* value = nullptr;
  real_t* grad = nullptr;
  std::size_t size = 0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(std::span<ParamRef> params) = 0;
  virtual void reset_state() = 0;
};

/// SGD with optional momentum and decoupled L2 weight decay (the paper trains
/// with wd = 5e-4).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void step(std::span<ParamRef> params) override;
  void reset_state() override { velocity_.clear(); }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, momentum_, weight_decay_;
  std::vector<std::vector<real_t>> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
                double weight_decay = 0.0)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

  void step(std::span<ParamRef> params) override;
  void reset_state() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<real_t>> m_, v_;
};

}  // namespace distgnn
