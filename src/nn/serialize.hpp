// Model checkpointing: flat binary serialization of a parameter list. The
// format is a magic header, the parameter count, then each parameter's size
// and raw float data — enough to save a trained model, reload it into an
// identically-constructed one, and resume or serve.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "nn/optim.hpp"

namespace distgnn {

/// Writes every parameter's current values. Throws std::runtime_error on IO
/// failure.
void save_checkpoint(std::span<const ParamRef> params, const std::string& path);

/// Loads values into `params`; the parameter count and each size must match
/// the checkpoint exactly (mismatch throws std::runtime_error).
void load_checkpoint(std::span<const ParamRef> params, const std::string& path);

/// Header inspection without loading: per-parameter element counts.
std::vector<std::size_t> checkpoint_shape(const std::string& path);

}  // namespace distgnn
