// Element-wise activations and inverted dropout with manual backward.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace distgnn {

class Relu {
 public:
  /// Y = max(X, 0); X and Y may alias. Caches the mask.
  void forward(ConstMatrixView X, MatrixView Y);
  /// dX = dY * 1[X > 0]; dY and dX may alias.
  void backward(ConstMatrixView dY, MatrixView dX) const;

 private:
  std::vector<std::uint8_t> mask_;
};

/// Inverted dropout: at train time zeroes activations with probability p and
/// scales survivors by 1/(1-p); at eval time it is the identity.
class Dropout {
 public:
  explicit Dropout(float p = 0.5f) : p_(p) {}

  void forward(ConstMatrixView X, MatrixView Y, bool training, Rng& rng);
  void backward(ConstMatrixView dY, MatrixView dX) const;

  float probability() const { return p_; }

 private:
  float p_;
  bool last_training_ = false;
  std::vector<std::uint8_t> mask_;
};

}  // namespace distgnn
