#include "nn/activations.hpp"

#include <stdexcept>

namespace distgnn {

void Relu::forward(ConstMatrixView X, MatrixView Y) {
  if (X.rows != Y.rows || X.cols != Y.cols) throw std::invalid_argument("Relu: shape mismatch");
  mask_.assign(X.size(), 0);
  const std::size_t n = X.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = X.data[i] > 0;
    mask_[i] = pos ? 1 : 0;
    Y.data[i] = pos ? X.data[i] : 0;
  }
}

void Relu::backward(ConstMatrixView dY, MatrixView dX) const {
  if (dY.size() != mask_.size()) throw std::invalid_argument("Relu::backward: size mismatch");
  const std::size_t n = dY.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) dX.data[i] = mask_[i] ? dY.data[i] : 0;
}

void Dropout::forward(ConstMatrixView X, MatrixView Y, bool training, Rng& rng) {
  if (X.rows != Y.rows || X.cols != Y.cols) throw std::invalid_argument("Dropout: shape mismatch");
  last_training_ = training && p_ > 0;
  if (!last_training_) {
    if (Y.data != X.data)
      for (std::size_t i = 0; i < X.size(); ++i) Y.data[i] = X.data[i];
    return;
  }
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  mask_.assign(X.size(), 0);
  for (std::size_t i = 0; i < X.size(); ++i) {
    // Serial loop: the mask must be identical for a fixed rng state.
    const bool keep_it = rng.next_float() < keep;
    mask_[i] = keep_it ? 1 : 0;
    Y.data[i] = keep_it ? X.data[i] * scale : 0;
  }
}

void Dropout::backward(ConstMatrixView dY, MatrixView dX) const {
  if (!last_training_) {
    if (dX.data != dY.data)
      for (std::size_t i = 0; i < dY.size(); ++i) dX.data[i] = dY.data[i];
    return;
  }
  const float scale = 1.0f / (1.0f - p_);
  for (std::size_t i = 0; i < dY.size(); ++i) dX.data[i] = mask_[i] ? dY.data[i] * scale : 0;
}

}  // namespace distgnn
