#include "nn/init.hpp"

#include <cmath>

namespace distgnn {

void xavier_uniform(MatrixView w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const real_t a = std::sqrt(6.0f / static_cast<real_t>(fan_in + fan_out));
  uniform_init(w, -a, a, rng);
}

void uniform_init(MatrixView w, real_t lo, real_t hi, Rng& rng) {
  for (std::size_t i = 0; i < w.rows; ++i) {
    real_t* r = w.row(i);
    for (std::size_t j = 0; j < w.cols; ++j) r[j] = rng.uniform(lo, hi);
  }
}

void zero_init(MatrixView w) {
  for (std::size_t i = 0; i < w.rows; ++i) {
    real_t* r = w.row(i);
    for (std::size_t j = 0; j < w.cols; ++j) r[j] = 0;
  }
}

}  // namespace distgnn
