// Classification metrics over masked vertex sets.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace distgnn {

struct AccuracyCount {
  std::int64_t correct = 0;
  std::int64_t total = 0;
  double accuracy() const { return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total); }
};

/// argmax(logits[v]) == labels[v] over rows with mask != 0. Counts are
/// returned (not the ratio) so distributed ranks can sum before dividing.
AccuracyCount masked_accuracy(ConstMatrixView logits, const std::vector<int>& labels,
                              const std::vector<std::uint8_t>& mask);

}  // namespace distgnn
