#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace distgnn {

namespace {
constexpr std::uint32_t kMagic = 0x444E4743;  // "CGND"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_checkpoint(std::span<const ParamRef> params, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const ParamRef& p : params) {
    const std::uint64_t size = p.size;
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(p.value),
              static_cast<std::streamsize>(p.size * sizeof(real_t)));
  }
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

void load_checkpoint(std::span<const ParamRef> params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) throw std::runtime_error("load_checkpoint: bad magic in " + path);
  if (version != kVersion) throw std::runtime_error("load_checkpoint: unsupported version");
  if (count != params.size())
    throw std::runtime_error("load_checkpoint: parameter count mismatch");
  for (const ParamRef& p : params) {
    std::uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in || size != p.size) throw std::runtime_error("load_checkpoint: parameter size mismatch");
    in.read(reinterpret_cast<char*>(p.value),
            static_cast<std::streamsize>(p.size * sizeof(real_t)));
  }
  if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
}

std::vector<std::size_t> checkpoint_shape(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint_shape: cannot open " + path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) throw std::runtime_error("checkpoint_shape: bad magic in " + path);
  std::vector<std::size_t> shape;
  shape.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in) throw std::runtime_error("checkpoint_shape: truncated header");
    shape.push_back(static_cast<std::size_t>(size));
    in.seekg(static_cast<std::streamoff>(size * sizeof(real_t)), std::ios::cur);
  }
  return shape;
}

}  // namespace distgnn
