#include "nn/rgcn_layer.hpp"

#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/init.hpp"

namespace distgnn {

RgcnLayer::RgcnLayer(std::size_t in_dim, std::size_t out_dim, int num_relations, bool apply_relu,
                     Rng& rng)
    : self_(in_dim, out_dim, rng), apply_relu_(apply_relu) {
  if (num_relations < 1) throw std::invalid_argument("RgcnLayer: need at least one relation");
  relation_.resize(static_cast<std::size_t>(num_relations));
  for (auto& rel : relation_) {
    rel.w.resize_discard(in_dim, out_dim);
    rel.grad.resize_discard(in_dim, out_dim);
    xavier_uniform(rel.w.view(), in_dim, out_dim, rng);
  }
  scaled_aggs_.resize(static_cast<std::size_t>(num_relations));
  inv_norms_.resize(static_cast<std::size_t>(num_relations));
}

void RgcnLayer::forward_from_aggregates(ConstMatrixView H, const std::vector<DenseMatrix>& aggs,
                                        const std::vector<DenseMatrix>& inv_norms, MatrixView Y) {
  if (aggs.size() != relation_.size() || inv_norms.size() != relation_.size())
    throw std::invalid_argument("RgcnLayer: one aggregate and normalizer per relation required");
  const std::size_t n = H.rows, d = H.cols;

  // Self path: Y = H W_self + b (Linear caches H for backward).
  self_.forward(H, Y);

  // Relation paths: Y += (agg_r ⊙ inv_norm_r) W_r.
  for (std::size_t r = 0; r < relation_.size(); ++r) {
    const DenseMatrix& agg = aggs[r];
    if (agg.rows() != n || agg.cols() != d)
      throw std::invalid_argument("RgcnLayer: aggregate shape mismatch");
    DenseMatrix& scaled = scaled_aggs_[r];
    scaled.resize_discard(n, d);
    inv_norms_[r] = inv_norms[r];
#pragma omp parallel for schedule(static)
    for (std::size_t v = 0; v < n; ++v) {
      const real_t s = inv_norms[r].at(v, 0);
      const real_t* a = agg.row(v);
      real_t* o = scaled.row(v);
#pragma omp simd
      for (std::size_t j = 0; j < d; ++j) o[j] = a[j] * s;
    }
    gemm(scaled.cview(), relation_[r].w.cview(), Y, /*accumulate=*/true);
  }

  if (apply_relu_) relu_.forward(ConstMatrixView(Y), Y);
}

void RgcnLayer::backward(ConstMatrixView dY, std::vector<DenseMatrix>& dscaled_rel,
                         MatrixView dH_self) {
  if (dscaled_rel.size() != relation_.size())
    throw std::invalid_argument("RgcnLayer::backward: one output buffer per relation required");

  ConstMatrixView upstream = dY;
  if (apply_relu_) {
    dz_.resize_discard(dY.rows, dY.cols);
    relu_.backward(dY, dz_.view());
    upstream = dz_.cview();
  }

  // Self path (also accumulates dW_self and db).
  self_.backward(upstream, dH_self);

  // Relation paths.
  for (std::size_t r = 0; r < relation_.size(); ++r) {
    gemm_at_b(scaled_aggs_[r].cview(), upstream, relation_[r].grad.view(), /*accumulate=*/true);
    DenseMatrix& dscaled = dscaled_rel[r];
    dscaled.resize_discard(scaled_aggs_[r].rows(), scaled_aggs_[r].cols());
    gemm_a_bt(upstream, relation_[r].w.cview(), dscaled.view());
    const std::size_t n = dscaled.rows(), d = dscaled.cols();
#pragma omp parallel for schedule(static)
    for (std::size_t v = 0; v < n; ++v) {
      const real_t s = inv_norms_[r].at(v, 0);
      real_t* row = dscaled.row(v);
#pragma omp simd
      for (std::size_t j = 0; j < d; ++j) row[j] *= s;
    }
  }
}

void RgcnLayer::zero_grad() {
  self_.zero_grad();
  for (auto& rel : relation_) rel.grad.zero();
}

void RgcnLayer::collect_params(std::vector<ParamRef>& out) {
  out.push_back({self_.weight().data(), self_.weight_grad().data(), self_.weight().size()});
  out.push_back({self_.bias().data(), self_.bias_grad().data(), self_.bias().size()});
  for (auto& rel : relation_)
    out.push_back({rel.w.data(), rel.grad.data(), rel.w.size()});
}

}  // namespace distgnn
