// Single-head Graph Attention (GAT, Velickovic et al.) forward pass — one of
// the "different GNN model architectures" the paper's §7 plans to extend
// DistGNN to. Implemented as inference (no backward): attention scoring is
// the SDDMM side of DGL's message-passing API (§2.2), and the weighted
// neighbourhood sum is the AP with a per-edge multiplier, so this layer
// exercises the edge-feature code paths end to end.
//
//   z_v    = W h_v
//   e_uv   = LeakyReLU(a_src · z_u + a_dst · z_v)       (per in-edge)
//   α_uv   = softmax over v's in-edges of e_uv
//   out_v  = Σ_u α_uv z_u
#pragma once

#include "graph/graph.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace distgnn {

class GatInference {
 public:
  GatInference(std::size_t in_dim, std::size_t out_dim, Rng& rng, float leaky_slope = 0.2f);

  /// Y must be |V| x out_dim. Vertices with no in-edges output zeros.
  void forward(const Graph& g, ConstMatrixView H, MatrixView Y);

  /// Normalized attention of the last forward, aligned with g.coo().edges
  /// (useful for inspection and for the AP cross-check in tests).
  const std::vector<real_t>& last_attention() const { return attention_; }

  DenseMatrix& weight() { return weight_; }
  DenseMatrix& attn_src() { return attn_src_; }
  DenseMatrix& attn_dst() { return attn_dst_; }

 private:
  DenseMatrix weight_;    // in x out
  DenseMatrix attn_src_;  // 1 x out (the a_src half of the attention vector)
  DenseMatrix attn_dst_;  // 1 x out
  float leaky_slope_;
  DenseMatrix z_;                   // projected features
  std::vector<real_t> attention_;  // per-edge α, coo order
};

}  // namespace distgnn
