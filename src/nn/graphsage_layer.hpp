// One GraphSAGE layer with the paper's GCN aggregation operator (§6.1):
// the neighbourhood sum is added to the vertex's own features and the sum is
// normalized by the in-degree, then passed through a Linear (+ ReLU).
//
// The layer is deliberately decoupled from *how* the neighbourhood sum was
// produced: the single-socket trainer feeds it a local aggregate, the
// distributed trainers feed it local + (possibly stale) remote partial
// aggregates. `forward_from_aggregate` handles everything downstream of the
// aggregation, and `backward_to_scaled` returns the degree-scaled upstream
// gradient so the caller can push it back through the (local) adjacency.
#pragma once

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optim.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace distgnn {

class GraphSageLayer {
 public:
  /// `apply_relu` is false on the output layer.
  GraphSageLayer(std::size_t in_dim, std::size_t out_dim, bool apply_relu, Rng& rng);

  /// H: input features (n x in); agg: complete (or partial, for 0c/cd-r)
  /// neighbourhood sum (n x in); inv_norm: per-vertex 1/(deg+1) column
  /// (n x 1); Y: output (n x out).
  void forward_from_aggregate(ConstMatrixView H, ConstMatrixView agg, ConstMatrixView inv_norm,
                              MatrixView Y);

  /// Backward from dY to the *scaled* combined gradient
  /// dscaled = inv_norm ⊙ d(combined) of shape (n x in). The caller finishes:
  ///   dH = dscaled + A_localᵀ · dscaled
  /// (self path + neighbour path). Parameter gradients accumulate internally.
  void backward_to_scaled(ConstMatrixView dY, MatrixView dscaled);

  void zero_grad() { linear_.zero_grad(); }
  void collect_params(std::vector<ParamRef>& out);

  std::size_t in_dim() const { return linear_.in_dim(); }
  std::size_t out_dim() const { return linear_.out_dim(); }
  Linear& linear() { return linear_; }
  const Linear& linear() const { return linear_; }

 private:
  Linear linear_;
  Relu relu_;
  bool apply_relu_;
  DenseMatrix combined_;   // (agg + H) * inv_norm, the Linear input
  DenseMatrix z_;          // pre-activation
  DenseMatrix dz_;         // scratch for backward
  DenseMatrix inv_norm_;   // cached copy of the normalizer column
};

}  // namespace distgnn
