#include "nn/metrics.hpp"

#include <stdexcept>

namespace distgnn {

AccuracyCount masked_accuracy(ConstMatrixView logits, const std::vector<int>& labels,
                              const std::vector<std::uint8_t>& mask) {
  if (labels.size() != logits.rows || mask.size() != logits.rows)
    throw std::invalid_argument("masked_accuracy: labels/mask size mismatch");
  AccuracyCount out;
  for (std::size_t v = 0; v < logits.rows; ++v) {
    if (!mask[v]) continue;
    const real_t* row = logits.row(v);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols; ++j)
      if (row[j] > row[best]) best = j;
    ++out.total;
    if (static_cast<int>(best) == labels[v]) ++out.correct;
  }
  return out;
}

}  // namespace distgnn
