// Parameter initialization schemes.
#pragma once

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace distgnn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(MatrixView w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// Uniform in [lo, hi).
void uniform_init(MatrixView w, real_t lo, real_t hi, Rng& rng);

void zero_init(MatrixView w);

}  // namespace distgnn
