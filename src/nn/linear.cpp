#include "nn/linear.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/init.hpp"

namespace distgnn {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_(in_dim, out_dim),
      bias_(1, out_dim),
      weight_grad_(in_dim, out_dim),
      bias_grad_(1, out_dim) {
  xavier_uniform(weight_.view(), in_dim, out_dim, rng);
  zero_init(bias_.view());
}

void Linear::forward(ConstMatrixView X, MatrixView Y) {
  if (X.cols != weight_.rows()) throw std::invalid_argument("Linear::forward: input width mismatch");
  cached_input_.resize_discard(X.rows, X.cols);
  std::copy(X.data, X.data + X.rows * X.cols, cached_input_.data());
  gemm(X, weight_.cview(), Y);
  add_row_bias(Y, bias_.cview());
}

void Linear::backward(ConstMatrixView dY, MatrixView dX) {
  if (dY.rows != cached_input_.rows())
    throw std::invalid_argument("Linear::backward: dY rows mismatch cached input");
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T
  gemm_at_b(cached_input_.cview(), dY, weight_grad_.view(), /*accumulate=*/true);
  column_sums(dY, bias_grad_.view(), /*accumulate=*/true);
  if (!dX.empty()) gemm_a_bt(dY, weight_.cview(), dX);
}

void Linear::zero_grad() {
  weight_grad_.zero();
  bias_grad_.zero();
}

}  // namespace distgnn
