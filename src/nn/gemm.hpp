// Dense matrix products for the GNN's MLP stages. OpenMP over output rows
// with an i-k-j loop order (row-major friendly); sizes here are tall-skinny
// (|V| x few hundred), so this simple scheme is bandwidth-bound and adequate
// — the paper's hot spot is the aggregation, not the GEMMs.
#pragma once

#include "util/matrix.hpp"

namespace distgnn {

/// C = A (m x k) * B (k x n). If accumulate is false, C is overwritten.
void gemm(ConstMatrixView A, ConstMatrixView B, MatrixView C, bool accumulate = false);

/// C = A^T (k x m -> m x k viewed transposed) * B. A is stored (k x m);
/// result C is (m x n): C[i][j] = sum_k A[k][i] * B[k][j].
void gemm_at_b(ConstMatrixView A, ConstMatrixView B, MatrixView C, bool accumulate = false);

/// C = A (m x k) * B^T where B is stored (n x k): C[i][j] = sum_k A[i][k]*B[j][k].
void gemm_a_bt(ConstMatrixView A, ConstMatrixView B, MatrixView C, bool accumulate = false);

/// row-broadcast add: each row of M += bias (bias is 1 x n).
void add_row_bias(MatrixView M, ConstMatrixView bias);

/// bias_grad[j] = sum_i M[i][j] (accumulates into out, 1 x n).
void column_sums(ConstMatrixView M, MatrixView out, bool accumulate = false);

}  // namespace distgnn
