#include "nn/gemm.hpp"

#include "util/parallel.hpp"

#include <algorithm>
#include <stdexcept>

namespace distgnn {

void gemm(ConstMatrixView A, ConstMatrixView B, MatrixView C, bool accumulate) {
  if (A.cols != B.rows || C.rows != A.rows || C.cols != B.cols)
    throw std::invalid_argument("gemm: shape mismatch");
  const std::size_t m = A.rows, k = A.cols, n = B.cols;
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    real_t* c = C.row(i);
    if (!accumulate)
      for (std::size_t j = 0; j < n; ++j) c[j] = 0;
    const real_t* a = A.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const real_t aik = a[kk];
      const real_t* b = B.row(kk);
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) c[j] += aik * b[j];
    }
  }
}

void gemm_at_b(ConstMatrixView A, ConstMatrixView B, MatrixView C, bool accumulate) {
  // A stored (k x m), B (k x n), C (m x n).
  if (A.rows != B.rows || C.rows != A.cols || C.cols != B.cols)
    throw std::invalid_argument("gemm_at_b: shape mismatch");
  const std::size_t k = A.rows, m = A.cols, n = B.cols;
  if (!accumulate) {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      real_t* c = C.row(i);
      for (std::size_t j = 0; j < n; ++j) c[j] = 0;
    }
  }
  // Parallelize over stripes of C's rows to avoid write collisions: each
  // thread walks all of A/B but only updates its stripe of C.
#pragma omp parallel
  {
    const int nt = par::num_threads();
    const int tid = par::thread_id();
    const std::size_t stripe = (m + static_cast<std::size_t>(nt) - 1) / static_cast<std::size_t>(nt);
    const std::size_t begin = std::min(m, static_cast<std::size_t>(tid) * stripe);
    const std::size_t end = std::min(m, begin + stripe);
    if (begin < end) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const real_t* a = A.row(kk);
        const real_t* b = B.row(kk);
        for (std::size_t i = begin; i < end; ++i) {
          const real_t aki = a[i];
          if (aki == 0) continue;
          real_t* c = C.row(i);
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) c[j] += aki * b[j];
        }
      }
    }
  }
}

void gemm_a_bt(ConstMatrixView A, ConstMatrixView B, MatrixView C, bool accumulate) {
  // A (m x k), B stored (n x k), C (m x n).
  if (A.cols != B.cols || C.rows != A.rows || C.cols != B.rows)
    throw std::invalid_argument("gemm_a_bt: shape mismatch");
  const std::size_t m = A.rows, k = A.cols, n = B.rows;
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    const real_t* a = A.row(i);
    real_t* c = C.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const real_t* b = B.row(j);
      real_t acc = 0;
#pragma omp simd reduction(+ : acc)
      for (std::size_t kk = 0; kk < k; ++kk) acc += a[kk] * b[kk];
      c[j] = accumulate ? c[j] + acc : acc;
    }
  }
}

void add_row_bias(MatrixView M, ConstMatrixView bias) {
  if (bias.rows != 1 || bias.cols != M.cols)
    throw std::invalid_argument("add_row_bias: bias must be 1 x cols");
  const real_t* b = bias.row(0);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < M.rows; ++i) {
    real_t* r = M.row(i);
#pragma omp simd
    for (std::size_t j = 0; j < M.cols; ++j) r[j] += b[j];
  }
}

void column_sums(ConstMatrixView M, MatrixView out, bool accumulate) {
  if (out.rows != 1 || out.cols != M.cols)
    throw std::invalid_argument("column_sums: out must be 1 x cols");
  real_t* o = out.row(0);
  if (!accumulate)
    for (std::size_t j = 0; j < M.cols; ++j) o[j] = 0;
  for (std::size_t i = 0; i < M.rows; ++i) {
    const real_t* r = M.row(i);
#pragma omp simd
    for (std::size_t j = 0; j < M.cols; ++j) o[j] += r[j];
  }
}

}  // namespace distgnn
