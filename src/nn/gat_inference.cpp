#include "nn/gat_inference.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/init.hpp"

namespace distgnn {

GatInference::GatInference(std::size_t in_dim, std::size_t out_dim, Rng& rng, float leaky_slope)
    : weight_(in_dim, out_dim),
      attn_src_(1, out_dim),
      attn_dst_(1, out_dim),
      leaky_slope_(leaky_slope) {
  xavier_uniform(weight_.view(), in_dim, out_dim, rng);
  xavier_uniform(attn_src_.view(), out_dim, 1, rng);
  xavier_uniform(attn_dst_.view(), out_dim, 1, rng);
}

void GatInference::forward(const Graph& g, ConstMatrixView H, MatrixView Y) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  if (H.rows != n || Y.rows != n || Y.cols != weight_.cols())
    throw std::invalid_argument("GatInference: shape mismatch");
  const std::size_t d = weight_.cols();

  // Projection.
  z_.resize_discard(n, d);
  gemm(H, weight_.cview(), z_.view());

  // Per-vertex halves of the additive attention: src_term_u = a_src . z_u,
  // dst_term_v = a_dst . z_v. (The SDDMM pattern reduced to rank-1 form.)
  std::vector<real_t> src_term(n), dst_term(n);
#pragma omp parallel for schedule(static)
  for (std::size_t v = 0; v < n; ++v) {
    const real_t* zr = z_.row(v);
    real_t s = 0, t = 0;
#pragma omp simd reduction(+ : s, t)
    for (std::size_t j = 0; j < d; ++j) {
      s += zr[j] * attn_src_.at(0, j);
      t += zr[j] * attn_dst_.at(0, j);
    }
    src_term[v] = s;
    dst_term[v] = t;
  }

  // Raw scores per edge (coo order), then per-destination softmax over the
  // in-adjacency, then the attention-weighted aggregation.
  const auto& edges = g.coo().edges;
  attention_.assign(edges.size(), 0);
  const CsrMatrix& in_csr = g.in_csr();
  const vid_t nv = g.num_vertices();
#pragma omp parallel for schedule(dynamic, 64)
  for (vid_t v = 0; v < nv; ++v) {
    const auto nbrs = in_csr.neighbors(v);
    const auto eids = in_csr.edge_ids(v);
    real_t* out = Y.row(static_cast<std::size_t>(v));
    for (std::size_t j = 0; j < d; ++j) out[j] = 0;
    if (nbrs.empty()) continue;

    // Scores with LeakyReLU, stabilized softmax.
    real_t max_score = -std::numeric_limits<real_t>::infinity();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const real_t raw = src_term[static_cast<std::size_t>(nbrs[i])] +
                         dst_term[static_cast<std::size_t>(v)];
      const real_t score = raw > 0 ? raw : leaky_slope_ * raw;
      attention_[static_cast<std::size_t>(eids[i])] = score;
      max_score = std::max(max_score, score);
    }
    real_t denom = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      real_t& a = attention_[static_cast<std::size_t>(eids[i])];
      a = std::exp(a - max_score);
      denom += a;
    }
    const real_t inv = 1.0f / denom;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      real_t& a = attention_[static_cast<std::size_t>(eids[i])];
      a *= inv;
      const real_t* zu = z_.row(static_cast<std::size_t>(nbrs[i]));
#pragma omp simd
      for (std::size_t j = 0; j < d; ++j) out[j] += a * zu[j];
    }
  }
}

}  // namespace distgnn
