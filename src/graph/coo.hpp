// Edge-list (COO) representation: the interchange format between generators,
// the Libra partitioner (which streams edges) and CSR construction.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace distgnn {

struct Edge {
  vid_t src = kInvalidVertex;
  vid_t dst = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

struct EdgeList {
  vid_t num_vertices = 0;
  std::vector<Edge> edges;

  eid_t num_edges() const { return static_cast<eid_t>(edges.size()); }

  void add(vid_t src, vid_t dst) { edges.push_back({src, dst}); }

  /// Appends the reverse of every current edge, turning an undirected edge
  /// list into the directed both-ways form the paper's datasets use
  /// ("each original un-directed edge ... converted into two directed edges").
  void symmetrize();
};

inline void EdgeList::symmetrize() {
  const std::size_t n = edges.size();
  edges.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) edges.push_back({edges[i].dst, edges[i].src});
}

}  // namespace distgnn
