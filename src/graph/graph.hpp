// Graph: the COO edge list plus lazily built in/out CSR adjacency and cached
// degrees. This is the object the trainer, partitioner and samplers share.
#pragma once

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "util/sync.hpp"
#include "util/types.hpp"

namespace distgnn {

class Graph {
 public:
  Graph() = default;
  explicit Graph(EdgeList coo);

  vid_t num_vertices() const { return coo_.num_vertices; }
  eid_t num_edges() const { return coo_.num_edges(); }

  const EdgeList& coo() const { return coo_; }

  /// In-adjacency (rows = destinations) — the aggregation pulls along this.
  const CsrMatrix& in_csr() const;
  /// Out-adjacency (rows = sources) — used by backprop and sampling.
  const CsrMatrix& out_csr() const;

  eid_t in_degree(vid_t v) const { return in_csr().degree(v); }
  eid_t out_degree(vid_t v) const { return out_csr().degree(v); }

  /// Average in-degree = |E| / |V|.
  double avg_degree() const;
  /// Non-zero density of the adjacency matrix = |E| / |V|^2.
  double density() const;

 private:
  EdgeList coo_;
  // Lazy CSR construction is guarded so concurrent rank threads sharing one
  // Graph (the mini-batch trainers sample against the same in_csr) are safe.
  // The mutex lives on the heap so the Graph itself stays movable (the
  // GUARDED_BY contract is documented rather than annotated: clang cannot
  // track a capability behind a shared_ptr indirection).
  mutable std::shared_ptr<util::Mutex> lazy_mutex_ = std::make_shared<util::Mutex>();
  mutable std::atomic<CsrMatrix*> in_ready_{nullptr};
  mutable std::atomic<CsrMatrix*> out_ready_{nullptr};
  mutable std::unique_ptr<CsrMatrix> in_csr_;
  mutable std::unique_ptr<CsrMatrix> out_csr_;

 public:
  Graph(const Graph& other) : Graph(other.coo_) {}
  Graph& operator=(const Graph& other) {
    if (this != &other) *this = Graph(other.coo_);
    return *this;
  }
  Graph(Graph&& other) noexcept { *this = std::move(other); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) {
      coo_ = std::move(other.coo_);
      lazy_mutex_ = std::move(other.lazy_mutex_);
      other.lazy_mutex_ = std::make_shared<util::Mutex>();  // keep moved-from usable
      in_csr_ = std::move(other.in_csr_);
      out_csr_ = std::move(other.out_csr_);
      in_ready_.store(in_csr_.get(), std::memory_order_release);
      out_ready_.store(out_csr_.get(), std::memory_order_release);
    }
    return *this;
  }
  ~Graph() = default;
};

}  // namespace distgnn
