// Synthetic dataset registry mirroring Table 2 of the paper. Each named
// dataset ("reddit-sim", "ogbn-products-sim", "proteins-sim",
// "ogbn-papers-sim", "am-sim") is a scaled-down analogue whose density
// character matches the original; `scale` multiplies the vertex count so the
// same benchmark can be run larger or smaller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/matrix.hpp"
#include "util/types.hpp"

namespace distgnn {

/// A fully materialized dataset: graph + vertex features + labels + the
/// train/validation/test split, ready for full-batch training.
struct Dataset {
  std::string name;
  Graph graph;
  DenseMatrix features;          // |V| x feature_dim
  std::vector<int> labels;       // |V|
  std::vector<std::uint8_t> train_mask, val_mask, test_mask;  // |V| each
  int num_classes = 0;
  /// Per-edge relation labels, indexed by edge id (empty for homogeneous
  /// datasets). Serving a relational model requires these — see
  /// hetero_to_dataset() in graph/hetero.hpp.
  std::vector<int> edge_types;
  int num_edge_types = 0;

  vid_t num_vertices() const { return graph.num_vertices(); }
  eid_t num_edges() const { return graph.num_edges(); }
  int feature_dim() const { return static_cast<int>(features.cols()); }
};

enum class GraphFamily {
  kRmat,       // skewed power-law quadrature (Reddit/Products character)
  kPowerLaw,   // Chung-Lu heavy tail (Papers character)
  kSbm,        // planted communities (Proteins character; learnable labels)
  kErdos,      // uniform control
};

/// Static description of a named dataset; see `dataset_registry()`.
struct DatasetSpec {
  std::string name;
  GraphFamily family = GraphFamily::kRmat;
  vid_t num_vertices = 1 << 14;   // at scale = 1
  double avg_degree = 16.0;       // directed edges per vertex after symmetrize
  int feature_dim = 64;
  int num_classes = 16;
  double rmat_skew = 0.57;        // RMAT `a` parameter (b = c = (1-a-d)/2)
  double power_law_exponent = 2.1;
  int sbm_blocks = 16;
  double sbm_in_out_ratio = 8.0;
  double train_fraction = 0.10, val_fraction = 0.05;
  std::uint64_t seed = 42;

  // Paper-reported statistics of the original dataset (Table 2), retained so
  // benches can print the paper-vs-sim comparison.
  vid_t paper_vertices = 0;
  eid_t paper_edges = 0;
  int paper_features = 0;
  int paper_classes = 0;
};

/// The five Table 2 datasets, in paper order.
const std::vector<DatasetSpec>& dataset_registry();

/// Looks up a spec by name; throws std::out_of_range for unknown names.
const DatasetSpec& dataset_spec(const std::string& name);

/// Materializes a dataset at `scale` (vertex count multiplied by `scale`,
/// edge count scaled to keep average degree constant). For the SBM family the
/// labels are the planted communities and features are class-informative
/// (centroid + Gaussian noise) so models can genuinely learn; for the other
/// families features/labels are random (the perf experiments never look at
/// accuracy).
Dataset make_dataset(const DatasetSpec& spec, double scale = 1.0);
Dataset make_dataset(const std::string& name, double scale = 1.0);

/// Direct construction of a learnable SBM dataset (used by accuracy tests
/// and Table 5): num_classes == num_blocks, noisy class-centroid features.
struct LearnableSbmParams {
  vid_t num_vertices = 4096;
  int num_classes = 8;
  double avg_degree = 16.0;
  double in_out_ratio = 8.0;
  int feature_dim = 32;
  float feature_noise = 1.0f;   // stddev of Gaussian noise around centroid
  double train_fraction = 0.30, val_fraction = 0.10;
  std::uint64_t seed = 11;
};
Dataset make_learnable_sbm(const LearnableSbmParams& params);

}  // namespace distgnn
