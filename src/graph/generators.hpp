// Synthetic graph generators. The paper's datasets are unavailable offline,
// so we generate graphs whose *density character* (power-law degrees for
// Reddit/OGBN, clustered structure for Proteins, SBM for accuracy studies)
// matches the phenomena each experiment depends on. See DESIGN.md §1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace distgnn {

/// Recursive-matrix (R-MAT / Kronecker) generator: power-law degrees, the
/// standard stand-in for social-network graphs like Reddit. Probabilities
/// (a,b,c,d) must sum to 1; skew (a >> d) controls degree skew.
struct RmatParams {
  vid_t num_vertices = 1 << 14;  // rounded up to a power of two internally
  eid_t num_edges = 1 << 18;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1-a-b-c
  std::uint64_t seed = 1;
  bool symmetrize = true;   // add both edge directions, as the paper's datasets do
  bool dedup = false;       // keep multi-edges by default (matches RMAT practice)
};
EdgeList generate_rmat(const RmatParams& params);

/// Erdős–Rényi G(n, m): uniform random edges, the low-skew control case.
EdgeList generate_erdos_renyi(vid_t num_vertices, eid_t num_edges, std::uint64_t seed,
                              bool symmetrize = true);

/// Stochastic block model with `num_blocks` planted communities: vertices in
/// the same block connect with probability proportional to `p_in`, across
/// blocks with `p_out`. Produces the clusterable structure that (a) gives
/// Libra partitions a low replication factor (Proteins-like) and (b) gives
/// the accuracy experiments learnable signal when features are drawn per block.
struct SbmParams {
  vid_t num_vertices = 1 << 12;
  int num_blocks = 8;
  double avg_degree = 16.0;     // expected (directed) degree per vertex
  double in_out_ratio = 8.0;    // p_in / p_out
  std::uint64_t seed = 7;
  bool symmetrize = true;
};
struct SbmGraph {
  EdgeList edges;
  std::vector<int> block_of;  // community of each vertex, |V| entries
};
SbmGraph generate_sbm(const SbmParams& params);

/// Power-law degree sequence via a Chung-Lu style configuration model;
/// exponent ~2.1 mimics the heavy tail of web/citation graphs (OGBN-Papers).
EdgeList generate_power_law(vid_t num_vertices, double avg_degree, double exponent,
                            std::uint64_t seed, bool symmetrize = true);

}  // namespace distgnn
