#include "graph/graph_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace distgnn {

namespace {
constexpr std::uint32_t kMagic = 0x444E4E47;  // "GNND" little-endian
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_edge_list_binary(const EdgeList& el, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_edge_list_binary: cannot open " + path);
  const std::uint64_t n = static_cast<std::uint64_t>(el.num_vertices);
  const std::uint64_t m = el.edges.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(el.edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!out) throw std::runtime_error("save_edge_list_binary: write failed for " + path);
}

EdgeList load_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_edge_list_binary: cannot open " + path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kMagic) throw std::runtime_error("load_edge_list_binary: bad magic in " + path);
  if (version != kVersion) throw std::runtime_error("load_edge_list_binary: unsupported version");
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  EdgeList el;
  el.num_vertices = static_cast<vid_t>(n);
  el.edges.resize(m);
  in.read(reinterpret_cast<char*>(el.edges.data()), static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) throw std::runtime_error("load_edge_list_binary: truncated file " + path);
  return el;
}

EdgeList load_edge_list_text(const std::string& path, vid_t min_num_vertices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list_text: cannot open " + path);
  EdgeList el;
  vid_t max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    vid_t u = 0, v = 0;
    if (!(ls >> u >> v)) throw std::runtime_error("load_edge_list_text: malformed line: " + line);
    el.add(u, v);
    max_id = std::max({max_id, u, v});
  }
  el.num_vertices = std::max(min_num_vertices, max_id + 1);
  return el;
}

void save_edge_list_text(const EdgeList& el, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_edge_list_text: cannot open " + path);
  out << "# vertices " << el.num_vertices << "\n";
  for (const Edge& e : el.edges) out << e.src << ' ' << e.dst << '\n';
  if (!out) throw std::runtime_error("save_edge_list_text: write failed for " + path);
}

}  // namespace distgnn
