#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace distgnn {

namespace {

int ceil_log2(vid_t n) {
  int bits = 0;
  while ((vid_t{1} << bits) < n) ++bits;
  return bits;
}

void dedup_edges(EdgeList& el) {
  auto& edges = el.edges;
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return x.src != y.src ? x.src < y.src : x.dst < y.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace

EdgeList generate_rmat(const RmatParams& params) {
  const double d = 1.0 - params.a - params.b - params.c;
  if (d < -1e-9 || params.a < 0 || params.b < 0 || params.c < 0)
    throw std::invalid_argument("generate_rmat: probabilities must be >= 0 and sum to <= 1");

  const int bits = ceil_log2(std::max<vid_t>(params.num_vertices, 2));
  Rng rng(params.seed);
  EdgeList el;
  el.num_vertices = params.num_vertices;
  el.edges.reserve(static_cast<std::size_t>(params.num_edges));

  for (eid_t i = 0; i < params.num_edges; ++i) {
    vid_t src = 0, dst = 0;
    do {
      src = 0;
      dst = 0;
      for (int b = 0; b < bits; ++b) {
        const double r = rng.next_double();
        const double a = params.a, bb = params.b, c = params.c;
        src <<= 1;
        dst <<= 1;
        if (r < a) {
          // top-left: no bits set
        } else if (r < a + bb) {
          dst |= 1;
        } else if (r < a + bb + c) {
          src |= 1;
        } else {
          src |= 1;
          dst |= 1;
        }
      }
    } while (src >= params.num_vertices || dst >= params.num_vertices || src == dst);
    el.add(src, dst);
  }

  if (params.dedup) dedup_edges(el);
  if (params.symmetrize) el.symmetrize();
  return el;
}

EdgeList generate_erdos_renyi(vid_t num_vertices, eid_t num_edges, std::uint64_t seed,
                              bool symmetrize) {
  Rng rng(seed);
  EdgeList el;
  el.num_vertices = num_vertices;
  el.edges.reserve(static_cast<std::size_t>(num_edges));
  for (eid_t i = 0; i < num_edges; ++i) {
    vid_t u = 0, v = 0;
    do {
      u = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(num_vertices)));
      v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(num_vertices)));
    } while (u == v);
    el.add(u, v);
  }
  if (symmetrize) el.symmetrize();
  return el;
}

SbmGraph generate_sbm(const SbmParams& params) {
  if (params.num_blocks <= 0) throw std::invalid_argument("generate_sbm: num_blocks must be > 0");
  Rng rng(params.seed);
  SbmGraph g;
  g.edges.num_vertices = params.num_vertices;
  g.block_of.resize(static_cast<std::size_t>(params.num_vertices));
  for (auto& b : g.block_of) b = static_cast<int>(rng.next_below(params.num_blocks));

  // Bucket vertices by block for fast intra-block endpoint draws.
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(params.num_blocks));
  for (vid_t v = 0; v < params.num_vertices; ++v)
    members[static_cast<std::size_t>(g.block_of[static_cast<std::size_t>(v)])].push_back(v);

  // Expected number of directed edges before symmetrization.
  const eid_t target_edges =
      static_cast<eid_t>(params.avg_degree * static_cast<double>(params.num_vertices) /
                         (params.symmetrize ? 2.0 : 1.0));
  // Probability an edge is intra-block given the in/out ratio and that a
  // uniformly random pair is intra-block with probability ~1/num_blocks.
  const double k = static_cast<double>(params.num_blocks);
  const double p_intra =
      params.in_out_ratio / (params.in_out_ratio + (k - 1.0));

  g.edges.edges.reserve(static_cast<std::size_t>(target_edges));
  for (eid_t i = 0; i < target_edges; ++i) {
    vid_t u = 0, v = 0;
    int guard = 0;
    do {
      u = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(params.num_vertices)));
      if (rng.bernoulli(p_intra)) {
        const auto& bucket = members[static_cast<std::size_t>(g.block_of[static_cast<std::size_t>(u)])];
        v = bucket.empty() ? u : bucket[rng.next_below(bucket.size())];
      } else {
        v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(params.num_vertices)));
      }
    } while (u == v && ++guard < 64);
    if (u == v) continue;
    g.edges.add(u, v);
  }
  if (params.symmetrize) g.edges.symmetrize();
  return g;
}

EdgeList generate_power_law(vid_t num_vertices, double avg_degree, double exponent,
                            std::uint64_t seed, bool symmetrize) {
  if (exponent <= 1.0) throw std::invalid_argument("generate_power_law: exponent must be > 1");
  Rng rng(seed);

  // Chung-Lu: weight w_i ~ i^{-1/(exponent-1)}, edge endpoints drawn with
  // probability proportional to weight via an alias-free cumulative table.
  std::vector<double> cumulative(static_cast<std::size_t>(num_vertices));
  double sum = 0.0;
  const double inv = 1.0 / (exponent - 1.0);
  for (vid_t i = 0; i < num_vertices; ++i) {
    sum += std::pow(static_cast<double>(i + 1), -inv);
    cumulative[static_cast<std::size_t>(i)] = sum;
  }

  auto draw = [&]() {
    const double r = rng.next_double() * sum;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return static_cast<vid_t>(it - cumulative.begin());
  };

  const eid_t target_edges = static_cast<eid_t>(
      avg_degree * static_cast<double>(num_vertices) / (symmetrize ? 2.0 : 1.0));
  EdgeList el;
  el.num_vertices = num_vertices;
  el.edges.reserve(static_cast<std::size_t>(target_edges));
  for (eid_t i = 0; i < target_edges; ++i) {
    vid_t u = 0, v = 0;
    int guard = 0;
    do {
      u = draw();
      v = draw();
    } while (u == v && ++guard < 64);
    if (u == v) continue;
    el.add(u, v);
  }
  if (symmetrize) el.symmetrize();
  return el;
}

}  // namespace distgnn
