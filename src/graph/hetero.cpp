#include "graph/hetero.hpp"

#include <stdexcept>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace distgnn {

HeteroGraph::HeteroGraph(EdgeList edges, std::vector<int> edge_type, int num_edge_types)
    : edges_(std::move(edges)), edge_type_(std::move(edge_type)), num_edge_types_(num_edge_types) {
  if (edge_type_.size() != edges_.edges.size())
    throw std::invalid_argument("HeteroGraph: edge_type size must match edge count");
  for (const int t : edge_type_)
    if (t < 0 || t >= num_edge_types_)
      throw std::out_of_range("HeteroGraph: edge type outside [0, num_edge_types)");
  per_type_edges_.resize(static_cast<std::size_t>(num_edge_types_));
  per_type_in_.resize(static_cast<std::size_t>(num_edge_types_));
  per_type_out_.resize(static_cast<std::size_t>(num_edge_types_));
}

const EdgeList& HeteroGraph::typed_edges(int relation) const {
  if (relation < 0 || relation >= num_edge_types_)
    throw std::out_of_range("HeteroGraph: bad relation id");
  auto& cached = per_type_edges_[static_cast<std::size_t>(relation)];
  if (!cached) {
    auto el = std::make_unique<EdgeList>();
    el->num_vertices = edges_.num_vertices;
    for (std::size_t i = 0; i < edges_.edges.size(); ++i)
      if (edge_type_[i] == relation) el->edges.push_back(edges_.edges[i]);
    cached = std::move(el);
  }
  return *cached;
}

const CsrMatrix& HeteroGraph::in_csr(int relation) const {
  auto& cached = per_type_in_[static_cast<std::size_t>(relation)];
  if (!cached) cached = std::make_unique<CsrMatrix>(CsrMatrix::from_coo(typed_edges(relation)));
  return *cached;
}

const CsrMatrix& HeteroGraph::out_csr(int relation) const {
  auto& cached = per_type_out_[static_cast<std::size_t>(relation)];
  if (!cached)
    cached = std::make_unique<CsrMatrix>(CsrMatrix::transpose_from_coo(typed_edges(relation)));
  return *cached;
}

HeteroDataset make_hetero_dataset(const HeteroDatasetParams& params) {
  SbmParams sp;
  sp.num_vertices = params.num_vertices;
  sp.num_blocks = params.num_classes;
  sp.avg_degree = params.avg_degree;
  sp.in_out_ratio = 8.0;
  sp.seed = params.seed;
  SbmGraph sbm = generate_sbm(sp);

  Rng rng(params.seed ^ 0xfeed);
  // Relation assignment: intra-community edges favour relation 0/1, cross-
  // community edges favour the higher relations, so relations are genuinely
  // informative about structure.
  std::vector<int> edge_type(sbm.edges.edges.size());
  for (std::size_t i = 0; i < sbm.edges.edges.size(); ++i) {
    const Edge& e = sbm.edges.edges[i];
    const bool intra = sbm.block_of[static_cast<std::size_t>(e.src)] ==
                       sbm.block_of[static_cast<std::size_t>(e.dst)];
    const int half = std::max(1, params.num_edge_types / 2);
    edge_type[i] = intra ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(half)))
                         : half + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                                      std::max(1, params.num_edge_types - half))));
  }

  HeteroDataset ds;
  ds.num_classes = params.num_classes;
  const auto n = static_cast<std::size_t>(params.num_vertices);
  ds.labels.resize(n);
  for (std::size_t v = 0; v < n; ++v) ds.labels[v] = sbm.block_of[v];
  ds.graph = HeteroGraph(std::move(sbm.edges), std::move(edge_type), params.num_edge_types);

  DenseMatrix centroids(static_cast<std::size_t>(params.num_classes),
                        static_cast<std::size_t>(params.feature_dim));
  for (std::size_t i = 0; i < centroids.size(); ++i) centroids.data()[i] = 2.0f * rng.normal();
  ds.features.resize_discard(n, static_cast<std::size_t>(params.feature_dim));
  for (std::size_t v = 0; v < n; ++v)
    for (int j = 0; j < params.feature_dim; ++j)
      ds.features.at(v, static_cast<std::size_t>(j)) =
          centroids.at(static_cast<std::size_t>(ds.labels[v]), static_cast<std::size_t>(j)) +
          params.feature_noise * rng.normal();

  ds.train_mask.assign(n, 0);
  ds.val_mask.assign(n, 0);
  ds.test_mask.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const double r = rng.next_double();
    if (r < params.train_fraction) ds.train_mask[v] = 1;
    else if (r < params.train_fraction + params.val_fraction) ds.val_mask[v] = 1;
    else ds.test_mask[v] = 1;
  }
  return ds;
}

Dataset hetero_to_dataset(const HeteroDataset& hetero, std::string name) {
  Dataset ds;
  ds.name = std::move(name);
  // Graph takes the merged edge list by value; edge order (= edge ids) is
  // preserved, so the per-edge labels below line up with CSR edge_ids().
  ds.graph = Graph(hetero.graph.edges());
  ds.features = hetero.features;
  ds.labels = hetero.labels;
  ds.train_mask = hetero.train_mask;
  ds.val_mask = hetero.val_mask;
  ds.test_mask = hetero.test_mask;
  ds.num_classes = hetero.num_classes;
  ds.edge_types = hetero.graph.edge_types();
  ds.num_edge_types = hetero.graph.num_edge_types();
  return ds;
}

}  // namespace distgnn
