#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

namespace distgnn {

DegreeStats in_degree_stats(const Graph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  const CsrMatrix& csr = g.in_csr();

  std::vector<eid_t> degrees(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) degrees[static_cast<std::size_t>(v)] = csr.degree(v);

  s.min = *std::min_element(degrees.begin(), degrees.end());
  s.max = *std::max_element(degrees.begin(), degrees.end());
  double sum = 0.0, sq = 0.0;
  for (const eid_t d : degrees) {
    sum += static_cast<double>(d);
    sq += static_cast<double>(d) * static_cast<double>(d);
  }
  s.mean = sum / static_cast<double>(n);
  s.stddev = std::sqrt(std::max(0.0, sq / static_cast<double>(n) - s.mean * s.mean));

  // Gini via the sorted-rank formula.
  std::sort(degrees.begin(), degrees.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < degrees.size(); ++i)
    weighted += static_cast<double>(2 * (i + 1)) * static_cast<double>(degrees[i]);
  if (sum > 0)
    s.gini = weighted / (static_cast<double>(n) * sum) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
  return s;
}

std::vector<eid_t> degree_histogram_log2(const Graph& g) {
  std::vector<eid_t> hist;
  const CsrMatrix& csr = g.in_csr();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const eid_t d = csr.degree(v);
    std::size_t bucket = 0;
    while ((eid_t{1} << (bucket + 1)) <= d + 1) ++bucket;
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

}  // namespace distgnn
