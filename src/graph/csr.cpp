#include "graph/csr.hpp"

#include <cassert>
#include <stdexcept>

namespace distgnn {

namespace {

// Counting-sort style CSR build keyed on `key(edge)`.
template <typename KeyFn, typename ValFn>
CsrMatrix build(const EdgeList& coo, KeyFn key, ValFn val) {
  const vid_t n = coo.num_vertices;
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : coo.edges) {
    if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
      throw std::out_of_range("CsrMatrix: edge endpoint outside [0, num_vertices)");
    ++row_ptr[static_cast<std::size_t>(key(e)) + 1];
  }
  for (vid_t v = 0; v < n; ++v) row_ptr[v + 1] += row_ptr[v];

  std::vector<vid_t> col_idx(coo.edges.size());
  std::vector<eid_t> edge_id(coo.edges.size());
  std::vector<eid_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (eid_t i = 0; i < coo.num_edges(); ++i) {
    const Edge& e = coo.edges[static_cast<std::size_t>(i)];
    const eid_t slot = cursor[static_cast<std::size_t>(key(e))]++;
    col_idx[static_cast<std::size_t>(slot)] = val(e);
    edge_id[static_cast<std::size_t>(slot)] = i;
  }
  return CsrMatrix::from_raw(std::move(row_ptr), std::move(col_idx), std::move(edge_id));
}

}  // namespace

CsrMatrix CsrMatrix::from_coo(const EdgeList& coo) {
  return build(coo, [](const Edge& e) { return e.dst; }, [](const Edge& e) { return e.src; });
}

CsrMatrix CsrMatrix::transpose_from_coo(const EdgeList& coo) {
  return build(coo, [](const Edge& e) { return e.src; }, [](const Edge& e) { return e.dst; });
}

CsrMatrix CsrMatrix::from_raw(std::vector<eid_t> row_ptr, std::vector<vid_t> col_idx,
                              std::vector<eid_t> edge_id) {
  assert(!row_ptr.empty());
  assert(col_idx.size() == edge_id.size());
  assert(static_cast<std::size_t>(row_ptr.back()) == col_idx.size());
  CsrMatrix m;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.edge_id_ = std::move(edge_id);
  return m;
}

CsrMatrix CsrMatrix::transposed() const {
  const vid_t n = num_rows();
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (const vid_t c : col_idx_) ++row_ptr[static_cast<std::size_t>(c) + 1];
  for (vid_t v = 0; v < n; ++v) row_ptr[v + 1] += row_ptr[v];

  std::vector<vid_t> col_idx(col_idx_.size());
  std::vector<eid_t> edge_id(edge_id_.size());
  std::vector<eid_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (vid_t r = 0; r < n; ++r) {
    for (eid_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const vid_t c = col_idx_[static_cast<std::size_t>(i)];
      const eid_t slot = cursor[static_cast<std::size_t>(c)]++;
      col_idx[static_cast<std::size_t>(slot)] = r;
      edge_id[static_cast<std::size_t>(slot)] = edge_id_[static_cast<std::size_t>(i)];
    }
  }
  return from_raw(std::move(row_ptr), std::move(col_idx), std::move(edge_id));
}

std::vector<CsrMatrix> CsrMatrix::column_blocks(int num_blocks) const {
  assert(num_blocks >= 1);
  const vid_t n = num_rows();
  const vid_t block_size = (n + num_blocks - 1) / num_blocks;
  const auto block_of = [&](vid_t u) { return static_cast<int>(u / block_size); };

  // Per-block entry counts per row, then prefix sums, then scatter.
  std::vector<std::vector<eid_t>> row_ptrs(
      static_cast<std::size_t>(num_blocks),
      std::vector<eid_t>(static_cast<std::size_t>(n) + 1, 0));
  for (vid_t r = 0; r < n; ++r)
    for (eid_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      ++row_ptrs[static_cast<std::size_t>(block_of(col_idx_[static_cast<std::size_t>(i)]))]
                [static_cast<std::size_t>(r) + 1];
  for (auto& rp : row_ptrs)
    for (vid_t v = 0; v < n; ++v) rp[v + 1] += rp[v];

  std::vector<std::vector<vid_t>> cols(static_cast<std::size_t>(num_blocks));
  std::vector<std::vector<eid_t>> eids(static_cast<std::size_t>(num_blocks));
  std::vector<std::vector<eid_t>> cursor(static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    cols[b].resize(static_cast<std::size_t>(row_ptrs[b].back()));
    eids[b].resize(static_cast<std::size_t>(row_ptrs[b].back()));
    cursor[b].assign(row_ptrs[b].begin(), row_ptrs[b].end() - 1);
  }
  for (vid_t r = 0; r < n; ++r) {
    for (eid_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const vid_t u = col_idx_[static_cast<std::size_t>(i)];
      const int b = block_of(u);
      const eid_t slot = cursor[b][static_cast<std::size_t>(r)]++;
      cols[b][static_cast<std::size_t>(slot)] = u;
      eids[b][static_cast<std::size_t>(slot)] = edge_id_[static_cast<std::size_t>(i)];
    }
  }

  std::vector<CsrMatrix> out;
  out.reserve(static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b)
    out.push_back(from_raw(std::move(row_ptrs[b]), std::move(cols[b]), std::move(eids[b])));
  return out;
}

}  // namespace distgnn
