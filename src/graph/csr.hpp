// Compressed sparse row adjacency. Following the paper's convention (Alg. 1),
// a CSR row is a *destination* vertex and its column entries are the source
// vertices with an edge incident on it, so `A[v]` enumerates the in-
// neighbourhood that the Aggregation Primitive pulls from. Each entry also
// carries the original edge id so edge features (fE) can be gathered.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/coo.hpp"
#include "util/types.hpp"

namespace distgnn {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds the in-adjacency CSR (rows = destinations). Stable: within a row,
  /// neighbours appear in edge-list order, which keeps results reproducible.
  static CsrMatrix from_coo(const EdgeList& coo);

  /// Builds the out-adjacency CSR (rows = sources) — the transpose, used by
  /// backpropagation through the aggregation and by neighbour sampling.
  static CsrMatrix transpose_from_coo(const EdgeList& coo);

  /// Transposes this matrix (swap source/destination roles), preserving ids.
  CsrMatrix transposed() const;

  vid_t num_rows() const { return static_cast<vid_t>(row_ptr_.size()) - 1; }
  eid_t num_entries() const { return static_cast<eid_t>(col_idx_.size()); }

  /// In-neighbours (column indices) of row v.
  std::span<const vid_t> neighbors(vid_t v) const {
    return {col_idx_.data() + row_ptr_[v], static_cast<std::size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  /// Edge ids aligned with neighbors(v).
  std::span<const eid_t> edge_ids(vid_t v) const {
    return {edge_id_.data() + row_ptr_[v], static_cast<std::size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  eid_t degree(vid_t v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  const std::vector<eid_t>& row_ptr() const { return row_ptr_; }
  const std::vector<vid_t>& col_idx() const { return col_idx_; }
  const std::vector<eid_t>& edge_id() const { return edge_id_; }

  /// Splits the *column* (source-vertex) range into `num_blocks` contiguous
  /// blocks and returns one CSR per block, implementing the cache-blocking
  /// preprocessing of Alg. 2. Row counts are preserved; each block holds only
  /// the entries whose source vertex falls in [b*B, (b+1)*B).
  std::vector<CsrMatrix> column_blocks(int num_blocks) const;

  /// Direct construction from raw arrays (row_ptr has num_rows+1 entries).
  static CsrMatrix from_raw(std::vector<eid_t> row_ptr, std::vector<vid_t> col_idx,
                            std::vector<eid_t> edge_id);

 private:
  std::vector<eid_t> row_ptr_;  // |rows|+1
  std::vector<vid_t> col_idx_;  // |entries|
  std::vector<eid_t> edge_id_;  // |entries|, original edge ids
};

}  // namespace distgnn
