#include "graph/graph.hpp"

namespace distgnn {

Graph::Graph(EdgeList coo) : coo_(std::move(coo)) {}

const CsrMatrix& Graph::in_csr() const {
  // Double-checked lazy build: the atomic publish makes the fast path
  // lock-free once the CSR exists.
  if (const CsrMatrix* ready = in_ready_.load(std::memory_order_acquire)) return *ready;
  util::MutexLock lock(*lazy_mutex_);
  if (!in_csr_) {
    in_csr_ = std::make_unique<CsrMatrix>(CsrMatrix::from_coo(coo_));
    in_ready_.store(in_csr_.get(), std::memory_order_release);
  }
  return *in_csr_;
}

const CsrMatrix& Graph::out_csr() const {
  if (const CsrMatrix* ready = out_ready_.load(std::memory_order_acquire)) return *ready;
  util::MutexLock lock(*lazy_mutex_);
  if (!out_csr_) {
    out_csr_ = std::make_unique<CsrMatrix>(CsrMatrix::transpose_from_coo(coo_));
    out_ready_.store(out_csr_.get(), std::memory_order_release);
  }
  return *out_csr_;
}

double Graph::avg_degree() const {
  return num_vertices() == 0 ? 0.0
                             : static_cast<double>(num_edges()) / static_cast<double>(num_vertices());
}

double Graph::density() const {
  if (num_vertices() == 0) return 0.0;
  const double n = static_cast<double>(num_vertices());
  return static_cast<double>(num_edges()) / (n * n);
}

}  // namespace distgnn
