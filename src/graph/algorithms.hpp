// Classic graph algorithms used as dataset diagnostics and partitioning
// aids: connected components (partition sanity / cluster discovery), BFS
// distances, induced subgraphs and k-core decomposition.
#pragma once

#include <vector>

#include "graph/coo.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace distgnn {

/// Weakly connected components over the undirected view of the graph.
/// Returns component ids in [0, num_components), labelled in discovery
/// order of the smallest member vertex.
struct Components {
  std::vector<vid_t> component_of;  // |V|
  vid_t num_components = 0;
  /// Size of each component.
  std::vector<vid_t> sizes;
};
Components connected_components(const Graph& g);

/// BFS hop distance from `source` over out-edges; unreachable = -1.
std::vector<vid_t> bfs_distances(const Graph& g, vid_t source);

/// Induced subgraph on `vertices` (global ids, need not be sorted). Edges
/// with both endpoints in the set are kept and remapped to local ids
/// following the order of `vertices`.
struct InducedSubgraph {
  EdgeList edges;                  // endpoints are local ids
  std::vector<vid_t> global_ids;   // local -> global, equals the input order
};
InducedSubgraph induced_subgraph(const Graph& g, const std::vector<vid_t>& vertices);

/// k-core number of every vertex over the undirected view (the largest k
/// such that the vertex survives iterated removal of degree-<k vertices).
std::vector<vid_t> core_numbers(const Graph& g);

}  // namespace distgnn
