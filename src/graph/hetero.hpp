// Heterogeneous (edge-typed) graphs for the RGCN workload of Figure 2: the
// AM museum dataset is a knowledge graph whose edges carry relation types,
// and RGCN-hetero aggregates each relation with its own weight matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "util/matrix.hpp"

namespace distgnn {

class HeteroGraph {
 public:
  HeteroGraph() = default;
  /// edge_type[i] in [0, num_edge_types) classifies edges[i].
  HeteroGraph(EdgeList edges, std::vector<int> edge_type, int num_edge_types);

  vid_t num_vertices() const { return edges_.num_vertices; }
  eid_t num_edges() const { return edges_.num_edges(); }
  int num_edge_types() const { return num_edge_types_; }

  const EdgeList& edges() const { return edges_; }
  const std::vector<int>& edge_types() const { return edge_type_; }

  /// In-adjacency CSR restricted to one relation (built lazily, cached).
  /// NOTE: lazy construction is not thread-safe; touch every relation once
  /// (as RgcnTrainer's constructor does) before sharing across threads.
  const CsrMatrix& in_csr(int relation) const;
  /// Out-adjacency of one relation (for backprop).
  const CsrMatrix& out_csr(int relation) const;

  /// In-degree of v counting only edges of `relation`.
  eid_t in_degree(vid_t v, int relation) const { return in_csr(relation).degree(v); }

 private:
  const EdgeList& typed_edges(int relation) const;

  EdgeList edges_;
  std::vector<int> edge_type_;
  int num_edge_types_ = 0;
  mutable std::vector<std::unique_ptr<EdgeList>> per_type_edges_;
  mutable std::vector<std::unique_ptr<CsrMatrix>> per_type_in_;
  mutable std::vector<std::unique_ptr<CsrMatrix>> per_type_out_;
};

/// A labelled heterogeneous dataset (AM character): planted communities give
/// learnable labels; each edge carries one of `num_edge_types` relations,
/// with intra-community edges biased toward low-numbered relations so the
/// relation signal is informative, as in real knowledge graphs.
struct HeteroDatasetParams {
  vid_t num_vertices = 4096;
  int num_classes = 11;        // AM's class count
  int num_edge_types = 4;
  double avg_degree = 8.0;
  int feature_dim = 16;
  float feature_noise = 1.0f;
  double train_fraction = 0.3, val_fraction = 0.1;
  std::uint64_t seed = 19;
};

struct HeteroDataset {
  HeteroGraph graph;
  DenseMatrix features;
  std::vector<int> labels;
  std::vector<std::uint8_t> train_mask, val_mask, test_mask;
  int num_classes = 0;

  vid_t num_vertices() const { return graph.num_vertices(); }
  int feature_dim() const { return static_cast<int>(features.cols()); }
};

HeteroDataset make_hetero_dataset(const HeteroDatasetParams& params);

/// Flattens a heterogeneous dataset into the serving-tier Dataset shape: the
/// merged (untyped) graph plus per-edge relation labels in `edge_types`.
/// Edge ids are preserved, so a CSR built from the result indexes the same
/// labels the HeteroGraph carries — which is what makes RGCN serving
/// bitwise-comparable to RgcnTrainer's per-relation aggregation.
Dataset hetero_to_dataset(const HeteroDataset& hetero, std::string name = "hetero");

}  // namespace distgnn
