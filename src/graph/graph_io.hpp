// Graph serialization: a simple binary container for edge lists plus a
// whitespace edge-list text reader, so generated datasets can be cached on
// disk and partitions can be saved/restored between runs.
#pragma once

#include <string>

#include "graph/coo.hpp"

namespace distgnn {

/// Writes "DGNN" magic, version, vertex count and the raw edge array.
void save_edge_list_binary(const EdgeList& el, const std::string& path);

/// Reads a file produced by save_edge_list_binary. Throws std::runtime_error
/// on malformed input.
EdgeList load_edge_list_binary(const std::string& path);

/// Reads "src dst" pairs, one per line; '#' starts a comment. num_vertices is
/// max id + 1 unless a larger value is given.
EdgeList load_edge_list_text(const std::string& path, vid_t min_num_vertices = 0);

void save_edge_list_text(const EdgeList& el, const std::string& path);

}  // namespace distgnn
