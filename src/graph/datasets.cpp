#include "graph/datasets.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace distgnn {

namespace {

void assign_split(Dataset& ds, double train_fraction, double val_fraction, Rng& rng) {
  const auto n = static_cast<std::size_t>(ds.num_vertices());
  ds.train_mask.assign(n, 0);
  ds.val_mask.assign(n, 0);
  ds.test_mask.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const double r = rng.next_double();
    if (r < train_fraction) ds.train_mask[v] = 1;
    else if (r < train_fraction + val_fraction) ds.val_mask[v] = 1;
    else ds.test_mask[v] = 1;
  }
}

void random_features_labels(Dataset& ds, int feature_dim, int num_classes, Rng& rng) {
  const auto n = static_cast<std::size_t>(ds.num_vertices());
  ds.features.resize_discard(n, static_cast<std::size_t>(feature_dim));
  for (std::size_t i = 0; i < ds.features.size(); ++i)
    ds.features.data()[i] = rng.uniform(-1.0f, 1.0f);
  ds.labels.resize(n);
  for (auto& l : ds.labels) l = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_classes)));
  ds.num_classes = num_classes;
}

}  // namespace

const std::vector<DatasetSpec>& dataset_registry() {
  static const std::vector<DatasetSpec> registry = [] {
    std::vector<DatasetSpec> specs;

    // AM: small heterogeneous museum graph; modest degree, trivial features.
    DatasetSpec am;
    am.name = "am-sim";
    am.family = GraphFamily::kRmat;
    am.num_vertices = 1 << 13;
    am.avg_degree = 6.4;
    am.feature_dim = 16;   // paper uses the vertex id (1 value); we widen so
                           // the MLP has something to chew on
    am.num_classes = 11;
    am.rmat_skew = 0.45;
    am.seed = 101;
    am.paper_vertices = 881'680;
    am.paper_edges = 5'668'682;
    am.paper_features = 1;
    am.paper_classes = 11;
    specs.push_back(am);

    // Reddit: the dense outlier (avg degree 492, density 2e-3). We keep the
    // degree high relative to the other sims so the cache-reuse and
    // replication-factor contrasts of Tables 3/4 survive the downscale.
    DatasetSpec reddit;
    reddit.name = "reddit-sim";
    reddit.family = GraphFamily::kRmat;
    reddit.num_vertices = 1 << 15;
    reddit.avg_degree = 128.0;
    reddit.feature_dim = 256;  // paper: 602
    reddit.num_classes = 41;
    reddit.rmat_skew = 0.57;
    reddit.seed = 102;
    reddit.paper_vertices = 232'965;
    reddit.paper_edges = 114'615'892;
    reddit.paper_features = 602;
    reddit.paper_classes = 41;
    specs.push_back(reddit);

    // OGBN-Products: much sparser (avg degree 50.5, density 2e-5).
    DatasetSpec products;
    products.name = "ogbn-products-sim";
    products.family = GraphFamily::kRmat;
    products.num_vertices = 1 << 17;
    products.avg_degree = 24.0;
    products.feature_dim = 100;
    products.num_classes = 47;
    products.rmat_skew = 0.5;
    products.seed = 103;
    products.paper_vertices = 2'449'029;
    products.paper_edges = 123'718'280;
    products.paper_features = 100;
    products.paper_classes = 47;
    specs.push_back(products);

    // Proteins: strongly clustered (protein families) -> SBM, which is what
    // gives it the paper's unusually low replication factor under Libra.
    DatasetSpec proteins;
    proteins.name = "proteins-sim";
    proteins.family = GraphFamily::kSbm;
    proteins.num_vertices = 1 << 16;
    proteins.avg_degree = 48.0;
    proteins.feature_dim = 128;
    proteins.num_classes = 32;  // paper: 256; scaled with the vertex count
    proteins.sbm_blocks = 64;
    // Strong homophily: ~80% of edges stay inside a protein family
    // (p_intra = ratio / (ratio + blocks - 1) ~ 0.83), which is what gives
    // Proteins its unusually low Table 4 replication factor.
    proteins.sbm_in_out_ratio = 300.0;
    proteins.seed = 104;
    proteins.paper_vertices = 8'745'542;
    proteins.paper_edges = 1'309'240'502;
    proteins.paper_features = 128;
    proteins.paper_classes = 256;
    specs.push_back(proteins);

    // OGBN-Papers: the heavy-tailed citation graph, lowest average degree.
    DatasetSpec papers;
    papers.name = "ogbn-papers-sim";
    papers.family = GraphFamily::kPowerLaw;
    papers.num_vertices = 1 << 17;
    papers.avg_degree = 14.0;
    papers.feature_dim = 128;
    papers.num_classes = 32;  // paper: 172
    papers.power_law_exponent = 2.1;
    papers.seed = 105;
    papers.paper_vertices = 111'059'956;
    papers.paper_edges = 1'615'685'872;
    papers.paper_features = 128;
    papers.paper_classes = 172;
    specs.push_back(papers);

    return specs;
  }();
  return registry;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& spec : dataset_registry())
    if (spec.name == name) return spec;
  throw std::out_of_range("dataset_spec: unknown dataset '" + name + "'");
}

Dataset make_dataset(const DatasetSpec& spec, double scale) {
  if (scale <= 0) throw std::invalid_argument("make_dataset: scale must be > 0");
  const auto n = static_cast<vid_t>(std::max(64.0, std::round(static_cast<double>(spec.num_vertices) * scale)));
  const auto undirected_edges = static_cast<eid_t>(spec.avg_degree * static_cast<double>(n) / 2.0);

  Dataset ds;
  ds.name = spec.name;
  Rng rng(spec.seed * 7919 + 13);

  switch (spec.family) {
    case GraphFamily::kRmat: {
      RmatParams p;
      p.num_vertices = n;
      p.num_edges = undirected_edges;
      p.a = spec.rmat_skew;
      p.b = p.c = (1.0 - spec.rmat_skew - 0.05) / 2.0;
      p.seed = spec.seed;
      ds.graph = Graph(generate_rmat(p));
      random_features_labels(ds, spec.feature_dim, spec.num_classes, rng);
      break;
    }
    case GraphFamily::kPowerLaw: {
      ds.graph = Graph(generate_power_law(n, spec.avg_degree, spec.power_law_exponent, spec.seed));
      random_features_labels(ds, spec.feature_dim, spec.num_classes, rng);
      break;
    }
    case GraphFamily::kErdos: {
      ds.graph = Graph(generate_erdos_renyi(n, undirected_edges, spec.seed));
      random_features_labels(ds, spec.feature_dim, spec.num_classes, rng);
      break;
    }
    case GraphFamily::kSbm: {
      SbmParams p;
      p.num_vertices = n;
      p.num_blocks = spec.sbm_blocks;
      p.avg_degree = spec.avg_degree;
      p.in_out_ratio = spec.sbm_in_out_ratio;
      p.seed = spec.seed;
      SbmGraph sbm = generate_sbm(p);
      ds.graph = Graph(std::move(sbm.edges));
      // Labels follow the planted blocks (folded onto num_classes); features
      // are noisy class centroids so the labels are genuinely learnable.
      ds.num_classes = spec.num_classes;
      ds.labels.resize(static_cast<std::size_t>(n));
      for (vid_t v = 0; v < n; ++v)
        ds.labels[static_cast<std::size_t>(v)] =
            sbm.block_of[static_cast<std::size_t>(v)] % spec.num_classes;
      DenseMatrix centroids(static_cast<std::size_t>(spec.num_classes),
                            static_cast<std::size_t>(spec.feature_dim));
      for (std::size_t i = 0; i < centroids.size(); ++i) centroids.data()[i] = rng.normal();
      ds.features.resize_discard(static_cast<std::size_t>(n), static_cast<std::size_t>(spec.feature_dim));
      for (vid_t v = 0; v < n; ++v) {
        const int c = ds.labels[static_cast<std::size_t>(v)];
        for (int j = 0; j < spec.feature_dim; ++j)
          ds.features.at(static_cast<std::size_t>(v), static_cast<std::size_t>(j)) =
              centroids.at(static_cast<std::size_t>(c), static_cast<std::size_t>(j)) + rng.normal();
      }
      break;
    }
  }

  assign_split(ds, spec.train_fraction, spec.val_fraction, rng);
  return ds;
}

Dataset make_dataset(const std::string& name, double scale) {
  return make_dataset(dataset_spec(name), scale);
}

Dataset make_learnable_sbm(const LearnableSbmParams& params) {
  SbmParams p;
  p.num_vertices = params.num_vertices;
  p.num_blocks = params.num_classes;
  p.avg_degree = params.avg_degree;
  p.in_out_ratio = params.in_out_ratio;
  p.seed = params.seed;
  SbmGraph sbm = generate_sbm(p);

  Dataset ds;
  ds.name = "learnable-sbm";
  ds.graph = Graph(std::move(sbm.edges));
  ds.num_classes = params.num_classes;
  const auto n = static_cast<std::size_t>(params.num_vertices);
  ds.labels.resize(n);
  for (std::size_t v = 0; v < n; ++v) ds.labels[v] = sbm.block_of[v];

  Rng rng(params.seed ^ 0xabcdef);
  DenseMatrix centroids(static_cast<std::size_t>(params.num_classes),
                        static_cast<std::size_t>(params.feature_dim));
  for (std::size_t i = 0; i < centroids.size(); ++i) centroids.data()[i] = 2.0f * rng.normal();
  ds.features.resize_discard(n, static_cast<std::size_t>(params.feature_dim));
  for (std::size_t v = 0; v < n; ++v)
    for (int j = 0; j < params.feature_dim; ++j)
      ds.features.at(v, static_cast<std::size_t>(j)) =
          centroids.at(static_cast<std::size_t>(ds.labels[v]), static_cast<std::size_t>(j)) +
          params.feature_noise * rng.normal();

  assign_split(ds, params.train_fraction, params.val_fraction, rng);
  return ds;
}

}  // namespace distgnn
