#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

namespace distgnn {

namespace {

/// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), vid_t{0});
  }

  vid_t find(vid_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(vid_t a, vid_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<vid_t> parent_;
  std::vector<vid_t> size_;
};

}  // namespace

Components connected_components(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  DisjointSets sets(n);
  for (const Edge& e : g.coo().edges) sets.unite(e.src, e.dst);

  Components out;
  out.component_of.assign(n, kInvalidVertex);
  std::unordered_map<vid_t, vid_t> label_of_root;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t root = sets.find(v);
    auto [it, inserted] = label_of_root.emplace(root, out.num_components);
    if (inserted) {
      ++out.num_components;
      out.sizes.push_back(0);
    }
    out.component_of[static_cast<std::size_t>(v)] = it->second;
    ++out.sizes[static_cast<std::size_t>(it->second)];
  }
  return out;
}

std::vector<vid_t> bfs_distances(const Graph& g, vid_t source) {
  std::vector<vid_t> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  if (source < 0 || source >= g.num_vertices()) return dist;
  const CsrMatrix& out_csr = g.out_csr();
  std::deque<vid_t> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!frontier.empty()) {
    const vid_t v = frontier.front();
    frontier.pop_front();
    for (const vid_t u : out_csr.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] >= 0) continue;
      dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
      frontier.push_back(u);
    }
  }
  return dist;
}

InducedSubgraph induced_subgraph(const Graph& g, const std::vector<vid_t>& vertices) {
  InducedSubgraph sub;
  sub.global_ids = vertices;
  sub.edges.num_vertices = static_cast<vid_t>(vertices.size());
  std::unordered_map<vid_t, vid_t> local_of;
  local_of.reserve(2 * vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i)
    local_of.emplace(vertices[i], static_cast<vid_t>(i));
  for (const Edge& e : g.coo().edges) {
    const auto su = local_of.find(e.src);
    if (su == local_of.end()) continue;
    const auto sv = local_of.find(e.dst);
    if (sv == local_of.end()) continue;
    sub.edges.add(su->second, sv->second);
  }
  return sub;
}

std::vector<vid_t> core_numbers(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  // Undirected degree = in + out (multi-edges count).
  std::vector<vid_t> degree(n, 0);
  for (const Edge& e : g.coo().edges) {
    ++degree[static_cast<std::size_t>(e.src)];
    ++degree[static_cast<std::size_t>(e.dst)];
  }

  // Matula-Beck peeling with bucket queues.
  const vid_t max_degree = n == 0 ? 0 : *std::max_element(degree.begin(), degree.end());
  std::vector<std::vector<vid_t>> buckets(static_cast<std::size_t>(max_degree) + 1);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    buckets[static_cast<std::size_t>(degree[static_cast<std::size_t>(v)])].push_back(v);

  // Undirected adjacency from both CSR directions.
  const CsrMatrix& in_csr = g.in_csr();
  const CsrMatrix& out_csr = g.out_csr();

  std::vector<vid_t> core(n, 0);
  std::vector<vid_t> remaining = degree;
  std::vector<std::uint8_t> removed(n, 0);
  vid_t current = 0;
  for (vid_t k = 0; k <= max_degree; ++k) {
    auto& bucket = buckets[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {  // bucket grows during the loop
      const vid_t v = bucket[i];
      if (removed[static_cast<std::size_t>(v)] || remaining[static_cast<std::size_t>(v)] != k)
        continue;
      removed[static_cast<std::size_t>(v)] = 1;
      current = std::max(current, k);
      core[static_cast<std::size_t>(v)] = current;
      auto relax = [&](vid_t u) {
        if (removed[static_cast<std::size_t>(u)]) return;
        vid_t& r = remaining[static_cast<std::size_t>(u)];
        if (r > k) {
          --r;
          if (r == k) bucket.push_back(u);  // falls into the current shell
          else buckets[static_cast<std::size_t>(r)].push_back(u);
        }
      };
      for (const vid_t u : in_csr.neighbors(v)) relax(u);
      for (const vid_t u : out_csr.neighbors(v)) relax(u);
    }
    bucket.clear();
  }
  return core;
}

}  // namespace distgnn
