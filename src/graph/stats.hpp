// Degree and density statistics used in the dataset tables and to validate
// that generated graphs have the intended character (skew, density).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace distgnn {

struct DegreeStats {
  eid_t min = 0;
  eid_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Gini coefficient of the degree distribution: 0 = perfectly uniform,
  /// -> 1 = extreme skew. Power-law graphs land well above Erdős–Rényi.
  double gini = 0.0;
};

DegreeStats in_degree_stats(const Graph& g);

/// Degree histogram with power-of-two buckets: bucket[i] counts vertices of
/// degree in [2^i, 2^{i+1}).
std::vector<eid_t> degree_histogram_log2(const Graph& g);

}  // namespace distgnn
