// LRU cache model at feature-vector granularity.
//
// The paper's Table 3 and Figure 3 are measured with hardware memory-traffic
// counters on a Xeon 8280. Offline we replay the aggregation kernel's access
// stream through this model instead: each cached object is one feature
// vector (d * sizeof(real_t) bytes), the capacity is the last-level cache
// size, and evictions of dirty objects account for write-back traffic.
// Reuse and read/write byte counts then reproduce the paper's curves, since
// those are properties of the access stream rather than of the silicon.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace distgnn {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_read = 0;      // DRAM -> cache (miss fills)
  std::uint64_t bytes_written = 0;   // cache -> DRAM (dirty evictions + flush)

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    misses += o.misses;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }

  std::uint64_t hits() const { return accesses - misses; }
  double hit_rate() const { return accesses == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(accesses); }
  /// Average number of times a fetched object is touched before eviction —
  /// the "cache reuse" metric of Table 3.
  double reuse() const { return misses == 0 ? 0.0 : static_cast<double>(accesses) / static_cast<double>(misses); }
  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }
};

/// Fully-associative LRU over fixed-size objects identified by a 64-bit key.
/// Object space tags let callers keep separate statistics for fV and fO while
/// sharing one capacity (they compete for the same cache in hardware).
class LruCache {
 public:
  /// capacity_bytes: total modelled cache; object_bytes: size of each cached
  /// object (one feature vector).
  LruCache(std::uint64_t capacity_bytes, std::uint64_t object_bytes);

  /// Touches object `key` in space `space`; is_write marks the object dirty.
  /// Returns true on hit.
  bool access(int space, std::uint64_t key, bool is_write);

  /// Evicts everything, charging write-backs for dirty objects. Called at
  /// the end of a kernel so pending dirty data is accounted.
  void flush();

  /// Drops all state and statistics.
  void reset();

  const CacheStats& stats(int space) const;
  CacheStats combined_stats() const;

  std::uint64_t capacity_objects() const { return capacity_objects_; }

 private:
  struct Node {
    std::uint64_t tag = 0;   // (space << 56) | key
    int prev = -1;
    int next = -1;
    bool dirty = false;
  };

  static std::uint64_t make_tag(int space, std::uint64_t key) {
    return (static_cast<std::uint64_t>(space) << 56) | (key & 0x00ffffffffffffffULL);
  }
  static int space_of(std::uint64_t tag) { return static_cast<int>(tag >> 56); }

  void unlink(int idx);
  void push_front(int idx);
  void evict_lru();
  CacheStats& stats_mut(int space);

  std::uint64_t capacity_objects_;
  std::uint64_t object_bytes_;
  std::vector<Node> nodes_;            // slab of capacity_objects_ nodes
  std::vector<int> free_list_;
  int head_ = -1;
  int tail_ = -1;
  std::unordered_map<std::uint64_t, int> index_;  // tag -> node slot
  mutable std::vector<CacheStats> per_space_;
};

}  // namespace distgnn
