#include "cachesim/lru_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace distgnn {

LruCache::LruCache(std::uint64_t capacity_bytes, std::uint64_t object_bytes)
    : capacity_objects_(std::max<std::uint64_t>(1, capacity_bytes / std::max<std::uint64_t>(1, object_bytes))),
      object_bytes_(object_bytes) {
  nodes_.resize(capacity_objects_);
  free_list_.reserve(capacity_objects_);
  for (std::uint64_t i = 0; i < capacity_objects_; ++i)
    free_list_.push_back(static_cast<int>(capacity_objects_ - 1 - i));
  index_.reserve(2 * capacity_objects_);
}

CacheStats& LruCache::stats_mut(int space) {
  if (space < 0) throw std::out_of_range("LruCache: negative space id");
  if (static_cast<std::size_t>(space) >= per_space_.size()) per_space_.resize(space + 1);
  return per_space_[static_cast<std::size_t>(space)];
}

const CacheStats& LruCache::stats(int space) const {
  static const CacheStats empty{};
  if (space < 0 || static_cast<std::size_t>(space) >= per_space_.size()) return empty;
  return per_space_[static_cast<std::size_t>(space)];
}

CacheStats LruCache::combined_stats() const {
  CacheStats out;
  for (const auto& s : per_space_) out += s;
  return out;
}

void LruCache::unlink(int idx) {
  Node& n = nodes_[static_cast<std::size_t>(idx)];
  if (n.prev >= 0) nodes_[static_cast<std::size_t>(n.prev)].next = n.next;
  else head_ = n.next;
  if (n.next >= 0) nodes_[static_cast<std::size_t>(n.next)].prev = n.prev;
  else tail_ = n.prev;
  n.prev = n.next = -1;
}

void LruCache::push_front(int idx) {
  Node& n = nodes_[static_cast<std::size_t>(idx)];
  n.prev = -1;
  n.next = head_;
  if (head_ >= 0) nodes_[static_cast<std::size_t>(head_)].prev = idx;
  head_ = idx;
  if (tail_ < 0) tail_ = idx;
}

void LruCache::evict_lru() {
  const int victim = tail_;
  Node& n = nodes_[static_cast<std::size_t>(victim)];
  if (n.dirty) stats_mut(space_of(n.tag)).bytes_written += object_bytes_;
  index_.erase(n.tag);
  unlink(victim);
  n.dirty = false;
  free_list_.push_back(victim);
}

bool LruCache::access(int space, std::uint64_t key, bool is_write) {
  CacheStats& s = stats_mut(space);
  ++s.accesses;
  const std::uint64_t tag = make_tag(space, key);
  const auto it = index_.find(tag);
  if (it != index_.end()) {
    const int idx = it->second;
    unlink(idx);
    push_front(idx);
    if (is_write) nodes_[static_cast<std::size_t>(idx)].dirty = true;
    return true;
  }

  ++s.misses;
  s.bytes_read += object_bytes_;
  if (free_list_.empty()) evict_lru();
  const int idx = free_list_.back();
  free_list_.pop_back();
  Node& n = nodes_[static_cast<std::size_t>(idx)];
  n.tag = tag;
  n.dirty = is_write;
  index_.emplace(tag, idx);
  push_front(idx);
  return false;
}

void LruCache::flush() {
  while (head_ >= 0) {
    const int idx = head_;
    Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.dirty) stats_mut(space_of(n.tag)).bytes_written += object_bytes_;
    index_.erase(n.tag);
    unlink(idx);
    n.dirty = false;
    free_list_.push_back(idx);
  }
}

void LruCache::reset() {
  flush();
  per_space_.clear();
}

}  // namespace distgnn
