// Analytic peak-memory model behind Table 6 of the paper (§6.3 "Memory and
// Communication Analysis"). Mirrors the paper's inventory: weight matrices,
// input features, per-layer aggregation and MLP outputs kept for
// backpropagation, plus the algorithm-specific communication state.
#pragma once

#include <cstdint>

namespace distgnn {

struct MemoryModelInput {
  std::int64_t partition_vertices = 0;  // N
  int feature_dim = 128;                // f
  int hidden1 = 256;                    // h1
  int hidden2 = 256;                    // h2
  int num_classes = 172;                // l
  std::int64_t split_vertices = 0;      // per partition
  int delay = 5;                        // r, for cd-r
};

struct MemoryEstimate {
  double model_gb = 0.0;       // weights + grads + optimizer state
  double activations_gb = 0.0; // features + per-layer agg/MLP outputs + backward scratch
  double comm_gb = 0.0;        // algorithm-specific buffers
  double total_gb = 0.0;
};

/// Peak per-epoch memory for each algorithm of §5.3.
MemoryEstimate estimate_memory_0c(const MemoryModelInput& in);
MemoryEstimate estimate_memory_cd0(const MemoryModelInput& in);
MemoryEstimate estimate_memory_cdr(const MemoryModelInput& in);

}  // namespace distgnn
