// Training configuration shared by the single-socket and distributed
// trainers.
#pragma once

#include <cstdint>
#include <string>

#include "comm/compression.hpp"
#include "kernels/aggregate.hpp"

namespace distgnn {

/// The three distributed algorithms of §5.3.
enum class Algorithm {
  k0c,    // communication-free: local partial aggregates only (roofline)
  kCd0,   // blocking sync of all split-vertices every epoch (exact)
  kCdR,   // delayed remote partial aggregates with bin delay r (DRPA)
};

std::string to_string(Algorithm a);

/// How stale remote data is used between bin firings in cd-r. The paper's
/// Alg. 4 literally overwrites the bin's aggregates once every r epochs and
/// otherwise leaves purely-local partials (kLiteral); keeping the last
/// received remote contribution and reapplying it every epoch (kCache) is
/// strictly fresher. Both are implemented; kCache is the default and the
/// ablation bench compares them.
enum class StalenessPolicy { kCache, kLiteral };

enum class ApMode {
  kBaseline,   // Alg. 1 (the "DGL 0.5.3" bar of Fig. 2)
  kOptimized,  // Alg. 2 + Alg. 3 with auto block count
};

struct TrainConfig {
  int num_layers = 3;       // paper: 2 for Reddit, 3 otherwise
  int hidden_dim = 256;     // paper: 16 for Reddit, 256 otherwise
  double lr = 0.01;
  double weight_decay = 5e-4;
  double momentum = 0.0;
  int epochs = 100;
  std::uint64_t seed = 1;

  ApMode ap_mode = ApMode::kOptimized;
  /// 0 = choose with auto_num_blocks().
  int num_blocks = 0;

  Algorithm algorithm = Algorithm::kCd0;
  /// DRPA delay r; used when algorithm == kCdR (the paper runs r = 5).
  int delay = 5;
  StalenessPolicy staleness = StalenessPolicy::kCache;

  /// OpenMP threads each rank may use; 0 = divide hardware threads evenly.
  int threads_per_rank = 0;

  /// Wire precision of the halo partial aggregates (§7 future work:
  /// FP16/BF16 halve the communication volume at a small accuracy cost).
  /// Gradient AllReduce always stays FP32.
  HaloPrecision halo_precision = HaloPrecision::kFp32;
};

}  // namespace distgnn
