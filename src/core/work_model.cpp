#include "core/work_model.hpp"

namespace distgnn {

MiniBatchWork minibatch_work(const std::vector<HopWork>& hops, std::int64_t train_vertices,
                             std::int64_t batch_size, int num_sockets) {
  MiniBatchWork out;
  out.hops = hops;
  for (const HopWork& h : hops) out.batch_ops += h.ops();
  const std::int64_t total_batches = (train_vertices + batch_size - 1) / batch_size;
  out.batches_per_socket = (total_batches + num_sockets - 1) / num_sockets;
  out.socket_ops = out.batch_ops * static_cast<double>(out.batches_per_socket);
  return out;
}

FullBatchWork fullbatch_work(std::int64_t partition_vertices, double avg_degree,
                             const std::vector<int>& feats_per_hop) {
  FullBatchWork out;
  int hop_number = static_cast<int>(feats_per_hop.size()) - 1;
  for (const int f : feats_per_hop) {
    HopWork h;
    h.label = "Hop-" + std::to_string(hop_number--);
    h.vertices = partition_vertices;
    h.avg_degree = avg_degree;
    h.feats = f;
    out.socket_ops += h.ops();
    out.hops.push_back(h);
  }
  return out;
}

}  // namespace distgnn
