#include "core/memory_model.hpp"

namespace distgnn {

namespace {

constexpr double kBytes = 4.0;  // FP32
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

double base_model_gb(const MemoryModelInput& in) {
  // w1: f x h1, w2: h1 x h2, w3: h2 x l — each with gradient and momentum.
  const double params = static_cast<double>(in.feature_dim) * in.hidden1 +
                        static_cast<double>(in.hidden1) * in.hidden2 +
                        static_cast<double>(in.hidden2) * in.num_classes;
  return 3.0 * params * kBytes / kGiB;
}

double base_activations_gb(const MemoryModelInput& in) {
  const double n = static_cast<double>(in.partition_vertices);
  // Input features N x f; aggregation outputs N x {f, h1, h2}; MLP outputs
  // N x {h1, h2, l}. The factor 2 accounts for the matching gradient buffers
  // backpropagation materializes per layer; with it the model lands on the
  // paper's measured 180/112/70 GB 0c column for OGBN-Papers.
  const double feats = n * in.feature_dim;
  const double agg = n * (in.feature_dim + in.hidden1 + in.hidden2);
  const double mlp = n * (in.hidden1 + in.hidden2 + in.num_classes);
  return 2.0 * (feats + agg + mlp) * kBytes / kGiB;
}

/// Per-layer halo payload width: split vertices exchange one vector per
/// layer input (f, h1, h2).
double halo_vector_gb(const MemoryModelInput& in) {
  return static_cast<double>(in.split_vertices) *
         (in.feature_dim + in.hidden1 + in.hidden2) * kBytes / kGiB;
}

MemoryEstimate finish(const MemoryModelInput& in, double comm_gb) {
  MemoryEstimate e;
  e.model_gb = base_model_gb(in);
  e.activations_gb = base_activations_gb(in);
  e.comm_gb = comm_gb;
  e.total_gb = e.model_gb + e.activations_gb + e.comm_gb;
  return e;
}

}  // namespace

MemoryEstimate estimate_memory_0c(const MemoryModelInput& in) {
  return finish(in, 0.0);
}

MemoryEstimate estimate_memory_cd0(const MemoryModelInput& in) {
  // Transient gather/scatter staging for the blocking two-phase tree sync;
  // send and receive staging alternate, so the peak is about half the halo
  // volume in flight at once.
  return finish(in, 0.5 * halo_vector_gb(in));
}

MemoryEstimate estimate_memory_cdr(const MemoryModelInput& in) {
  // cd-r pays cd-0's staging, additionally pins the stale caches (root
  // leaf-sum + leaf total, one halo volume each) across epochs, and holds
  // the delayed in-flight messages (~one halo volume outstanding across the
  // r-epoch pipeline).
  const double staging = 0.5 * halo_vector_gb(in);
  const double caches = 2.0 * halo_vector_gb(in);
  const double in_flight = halo_vector_gb(in);
  return finish(in, staging + caches + in_flight);
}

}  // namespace distgnn
