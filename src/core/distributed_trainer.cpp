#include "core/distributed_trainer.hpp"

#include "util/parallel.hpp"

#include <array>
#include <chrono>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "comm/compression.hpp"
#include "comm/world.hpp"
#include "core/sage_model.hpp"
#include "kernels/aggregate.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "util/stopwatch.hpp"

namespace distgnn {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Tag layout: one distinct tag per (layer, bin, phase, purpose). Purpose 0 =
// training halo, 1 = evaluation halo (separate so an eval pass can never
// consume a pending delayed training message).
int make_tag(int layer, int bin, int phase, int purpose) {
  return ((layer * 1024 + bin) * 2 + phase) * 2 + purpose + 1;
}

std::vector<real_t> gather_rows(const DenseMatrix& m, const std::vector<vid_t>& rows) {
  const std::size_t d = m.cols();
  std::vector<real_t> out(rows.size() * d);
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::memcpy(out.data() + i * d, m.row(static_cast<std::size_t>(rows[i])), d * sizeof(real_t));
  return out;
}

void scatter_rows_add(DenseMatrix& m, const std::vector<vid_t>& rows,
                      const std::vector<real_t>& payload) {
  const std::size_t d = m.cols();
  if (payload.size() != rows.size() * d)
    throw std::logic_error("scatter_rows_add: payload size mismatch");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    real_t* dst = m.row(static_cast<std::size_t>(rows[i]));
    const real_t* src = payload.data() + i * d;
    for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
  }
}

void scatter_rows_set(DenseMatrix& m, const std::vector<vid_t>& rows,
                      const std::vector<real_t>& payload) {
  const std::size_t d = m.cols();
  if (payload.size() != rows.size() * d)
    throw std::logic_error("scatter_rows_set: payload size mismatch");
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::memcpy(m.row(static_cast<std::size_t>(rows[i])), payload.data() + i * d,
                d * sizeof(real_t));
}

/// Per-rank training state and the per-layer halo synchronization logic.
class RankTrainer {
 public:
  RankTrainer(Communicator& comm, const Dataset& dataset, const PartitionedGraph& pg,
              const std::vector<HaloPlan>& plans, const TrainConfig& config)
      : comm_(comm),
        config_(config),
        lp_(pg.parts[static_cast<std::size_t>(comm.rank())]),
        plan_(plans[static_cast<std::size_t>(comm.rank())]),
        model_(dataset.feature_dim(), config.hidden_dim, dataset.num_classes, config.num_layers,
               config.seed),
        optimizer_(config.lr, config.momentum, config.weight_decay) {
    const CsrMatrix in_csr = CsrMatrix::from_coo(lp_.edges);
    const CsrMatrix out_csr = CsrMatrix::transpose_from_coo(lp_.edges);
    const int nb = config.num_blocks > 0
                       ? config.num_blocks
                       : auto_num_blocks(lp_.num_vertices,
                                         static_cast<std::size_t>(dataset.feature_dim()));
    blocked_in_ = BlockedCsr(in_csr, nb);
    blocked_out_ = BlockedCsr(out_csr, nb);

    features_ = gather_local_features(lp_, dataset.features.cview());
    labels_ = gather_local_labels(lp_, dataset.labels);
    train_mask_ = gather_local_mask(lp_, dataset.train_mask);
    val_mask_ = gather_local_mask(lp_, dataset.val_mask);
    test_mask_ = gather_local_mask(lp_, dataset.test_mask);

    const auto n = static_cast<std::size_t>(lp_.num_vertices);
    inv_norm_.resize_discard(n, 1);
    for (std::size_t v = 0; v < n; ++v)
      inv_norm_.at(v, 0) = 1.0f / (static_cast<real_t>(lp_.global_in_degree[v]) + 1.0f);

    acts_.resize(static_cast<std::size_t>(config.num_layers) + 1);
    acts_[0] = features_;
    aggs_.resize(static_cast<std::size_t>(config.num_layers));

    if (config.algorithm == Algorithm::kCdR &&
        config_.staleness == StalenessPolicy::kCache) {
      root_extra_.resize(static_cast<std::size_t>(config.num_layers));
      root_has_.resize(static_cast<std::size_t>(config.num_layers));
      leaf_total_.resize(static_cast<std::size_t>(config.num_layers));
      leaf_has_.resize(static_cast<std::size_t>(config.num_layers));
      for (int l = 0; l < config.num_layers; ++l) {
        const std::size_t d = layer_in_dim(l);
        root_extra_[static_cast<std::size_t>(l)].resize_discard(n, d, 0);
        root_has_[static_cast<std::size_t>(l)].assign(n, 0);
        leaf_total_[static_cast<std::size_t>(l)].resize_discard(n, d, 0);
        leaf_has_[static_cast<std::size_t>(l)].assign(n, 0);
      }
    }

    // Global masked-vertex counts (gradient normalizers).
    std::int64_t local = 0;
    for (const auto m : train_mask_) local += m;
    const auto counts = comm_.allgather(local);
    global_train_count_ = std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  }

  std::size_t layer_in_dim(int l) const {
    return l == 0 ? features_.cols() : static_cast<std::size_t>(config_.hidden_dim);
  }

  int num_bins() const {
    return config_.algorithm == Algorithm::kCdR ? std::max(1, config_.delay) : 1;
  }

  /// Forward pass. `epoch` drives the DRPA bin schedule; when `exact` is
  /// true a blocking cd-0 halo exchange is used regardless of the algorithm
  /// (evaluation semantics). Returns (LAT, RAT) seconds.
  /// Phase times use per-thread CPU clocks: ranks are simulated by threads
  /// that may outnumber host cores, and wall clock would charge scheduler
  /// waits of other ranks to this rank's LAT/RAT. For RAT this deliberately
  /// counts only halo pre/post-processing CPU, not blocked recv waits —
  /// in-process wait time measures host scheduling, not network cost, which
  /// is why the runtime reports communication *volumes* (CommStats) instead.
  std::pair<double, double> forward(int epoch, bool exact) {
    double lat = 0.0, rat = 0.0;
    const auto n = static_cast<std::size_t>(lp_.num_vertices);
    for (int l = 0; l < config_.num_layers; ++l) {
      const auto li = static_cast<std::size_t>(l);
      double t0 = thread_cpu_seconds();
      aggs_[li].resize_discard(n, acts_[li].cols(), 0);
      ApConfig ap;
      aggregate_prepartitioned(blocked_in_, acts_[li].cview(), {}, aggs_[li].view(), ap);
      lat += thread_cpu_seconds() - t0;

      t0 = thread_cpu_seconds();
      if (exact) {
        halo_sync_blocking(l, /*purpose=*/1);
      } else {
        switch (config_.algorithm) {
          case Algorithm::k0c: break;
          case Algorithm::kCd0: halo_sync_blocking(l, /*purpose=*/0); break;
          case Algorithm::kCdR: halo_sync_delayed(l, epoch); break;
        }
      }
      rat += thread_cpu_seconds() - t0;

      acts_[li + 1].resize_discard(n, model_.layer(l).out_dim());
      model_.layer(l).forward_from_aggregate(acts_[li].cview(), aggs_[li].cview(),
                                             inv_norm_.cview(), acts_[li + 1].view());
    }
    return {lat, rat};
  }

  double train_epoch_body(int epoch, double& lat, double& rat) {
    auto [l, r] = forward(epoch, /*exact=*/false);
    lat = l;
    rat = r;

    double loss = loss_.forward(acts_.back().cview(), labels_, train_mask_, global_train_count_);
    // Global loss for reporting (gradients already use the global divisor).
    std::array<double, 1> loss_buf{loss};
    comm_.allreduce_sum(std::span<double>(loss_buf));
    loss = loss_buf[0];

    model_.zero_grad();
    const auto n = static_cast<std::size_t>(lp_.num_vertices);
    d_upper_.resize_discard(n, acts_.back().cols());
    loss_.backward(d_upper_.view());

    ApConfig ap;
    for (int l2 = config_.num_layers - 1; l2 >= 0; --l2) {
      dscaled_.resize_discard(n, model_.layer(l2).in_dim());
      model_.layer(l2).backward_to_scaled(d_upper_.cview(), dscaled_.view());
      if (l2 == 0) break;
      dH_.resize_discard(n, dscaled_.cols(), 0);
      aggregate_prepartitioned(blocked_out_, dscaled_.cview(), {}, dH_.view(), ap);
      const std::size_t total = dH_.size();
      for (std::size_t i = 0; i < total; ++i) dH_.data()[i] += dscaled_.data()[i];
      d_upper_ = dH_;
    }

    allreduce_gradients();
    auto params = model_.params();
    optimizer_.step(params);
    return loss;
  }

  /// Fully synchronized evaluation over the three masks; returns global
  /// accuracies (identical on every rank).
  std::array<double, 3> evaluate_all() {
    forward(/*epoch=*/0, /*exact=*/true);
    const std::array<const std::vector<std::uint8_t>*, 3> masks{&train_mask_, &val_mask_,
                                                                &test_mask_};
    std::array<double, 3> out{};
    for (std::size_t k = 0; k < masks.size(); ++k) {
      const AccuracyCount c = masked_accuracy(acts_.back().cview(), labels_, *masks[k]);
      const auto corrects = comm_.allgather(c.correct);
      const auto totals = comm_.allgather(c.total);
      const auto correct = std::accumulate(corrects.begin(), corrects.end(), std::int64_t{0});
      const auto total = std::accumulate(totals.begin(), totals.end(), std::int64_t{0});
      out[k] = total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
    }
    return out;
  }

 private:
  /// Halo payloads travel at config_.halo_precision (fp32/bf16/fp16);
  /// gradient AllReduce always stays fp32.
  void send_halo(part_t dest, int tag, std::vector<real_t> payload) {
    comm_.send(dest, tag, encode_halo(payload, config_.halo_precision));
  }
  std::vector<real_t> recv_halo(part_t source, int tag, std::size_t count) {
    return decode_halo(comm_.recv(source, tag), count, config_.halo_precision);
  }

  /// cd-0 (and evaluation) halo: blocking two-phase tree sync on bin 0..all.
  void halo_sync_blocking(int layer, int purpose) {
    for (int bin = 0; bin < plan_.num_bins; ++bin) {
      DenseMatrix& agg = aggs_[static_cast<std::size_t>(layer)];
      // Phase 0: leaves -> roots.
      for (part_t p = 0; p < plan_.num_parts; ++p) {
        if (p == comm_.rank()) continue;
        send_halo(p, make_tag(layer, bin, 0, purpose),
                  gather_rows(agg, plan_.peer(bin, p).send_leaf));
      }
      for (part_t p = 0; p < plan_.num_parts; ++p) {
        if (p == comm_.rank()) continue;
        const auto payload = recv_halo(p, make_tag(layer, bin, 0, purpose),
                                       plan_.peer(bin, p).recv_root.size() * agg.cols());
        scatter_rows_add(agg, plan_.peer(bin, p).recv_root, payload);
      }
      // Phase 1: roots -> leaves (totals overwrite leaf partials).
      for (part_t p = 0; p < plan_.num_parts; ++p) {
        if (p == comm_.rank()) continue;
        send_halo(p, make_tag(layer, bin, 1, purpose),
                  gather_rows(agg, plan_.peer(bin, p).send_root));
      }
      for (part_t p = 0; p < plan_.num_parts; ++p) {
        if (p == comm_.rank()) continue;
        const auto payload = recv_halo(p, make_tag(layer, bin, 1, purpose),
                                       plan_.peer(bin, p).recv_leaf.size() * agg.cols());
        scatter_rows_set(agg, plan_.peer(bin, p).recv_leaf, payload);
      }
    }
  }

  /// cd-r: Alg. 4. Only bin (epoch % r) communicates; leaf partials sent in
  /// epoch e are folded into roots at e+r and the returned totals reach the
  /// leaves at e+2r.
  void halo_sync_delayed(int layer, int epoch) {
    const int r = num_bins();
    const int bin = epoch % r;
    DenseMatrix& agg = aggs_[static_cast<std::size_t>(layer)];
    const auto li = static_cast<std::size_t>(layer);

    // (a) Leaves push this epoch's *fresh local* partials for the bin.
    for (part_t p = 0; p < plan_.num_parts; ++p) {
      if (p == comm_.rank()) continue;
      send_halo(p, make_tag(layer, bin, 0, 0), gather_rows(agg, plan_.peer(bin, p).send_leaf));
    }

    const bool cache = config_.staleness == StalenessPolicy::kCache;

    // (b) Mature leaf->root messages: these were sent r epochs ago.
    if (epoch >= r) {
      if (cache) {
        // Reset the bin's cached rows, then accumulate the fresh payloads.
        for (part_t p = 0; p < plan_.num_parts; ++p) {
          if (p == comm_.rank()) continue;
          for (const vid_t row : plan_.peer(bin, p).recv_root) {
            real_t* dst = root_extra_[li].row(static_cast<std::size_t>(row));
            std::fill(dst, dst + root_extra_[li].cols(), real_t{0});
          }
        }
        for (part_t p = 0; p < plan_.num_parts; ++p) {
          if (p == comm_.rank()) continue;
          const auto payload = recv_halo(p, make_tag(layer, bin, 0, 0),
                                         plan_.peer(bin, p).recv_root.size() * agg.cols());
          scatter_rows_add(root_extra_[li], plan_.peer(bin, p).recv_root, payload);
          for (const vid_t row : plan_.peer(bin, p).recv_root)
            root_has_[li][static_cast<std::size_t>(row)] = 1;
        }
      } else {
        for (part_t p = 0; p < plan_.num_parts; ++p) {
          if (p == comm_.rank()) continue;
          const auto payload = recv_halo(p, make_tag(layer, bin, 0, 0),
                                         plan_.peer(bin, p).recv_root.size() * agg.cols());
          scatter_rows_add(agg, plan_.peer(bin, p).recv_root, payload);
        }
      }
    }

    // (c) Fold the cached remote leaf sums into every root's fresh partial.
    if (cache) {
      const std::size_t n = agg.rows(), d = agg.cols();
      for (std::size_t v = 0; v < n; ++v) {
        if (!root_has_[li][v]) continue;
        real_t* dst = agg.row(v);
        const real_t* src = root_extra_[li].row(v);
        for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    }

    // (d) Roots return (possibly stale-augmented) totals for the bin. Alg. 4
    // guards this send with e >= r (lines 13-16), which keeps the root->leaf
    // channel exactly one delay behind the leaf->root one.
    if (epoch >= r) {
      for (part_t p = 0; p < plan_.num_parts; ++p) {
        if (p == comm_.rank()) continue;
        send_halo(p, make_tag(layer, bin, 1, 0), gather_rows(agg, plan_.peer(bin, p).send_root));
      }
    }

    // (e) Mature root->leaf totals (sent r epochs ago).
    if (epoch >= 2 * r) {
      if (cache) {
        for (part_t p = 0; p < plan_.num_parts; ++p) {
          if (p == comm_.rank()) continue;
          const auto payload = recv_halo(p, make_tag(layer, bin, 1, 0),
                                         plan_.peer(bin, p).recv_leaf.size() * agg.cols());
          scatter_rows_set(leaf_total_[li], plan_.peer(bin, p).recv_leaf, payload);
          for (const vid_t row : plan_.peer(bin, p).recv_leaf)
            leaf_has_[li][static_cast<std::size_t>(row)] = 1;
        }
      } else {
        for (part_t p = 0; p < plan_.num_parts; ++p) {
          if (p == comm_.rank()) continue;
          const auto payload = recv_halo(p, make_tag(layer, bin, 1, 0),
                                         plan_.peer(bin, p).recv_leaf.size() * agg.cols());
          scatter_rows_set(agg, plan_.peer(bin, p).recv_leaf, payload);
        }
      }
    }

    // (f) Leaves substitute the freshest known global total.
    if (cache) {
      const std::size_t n = agg.rows(), d = agg.cols();
      for (std::size_t v = 0; v < n; ++v) {
        if (!leaf_has_[li][v]) continue;
        std::memcpy(agg.row(v), leaf_total_[li].row(v), d * sizeof(real_t));
      }
    }
  }

  void allreduce_gradients() {
    auto params = model_.params();
    std::size_t total = 0;
    for (const auto& p : params) total += p.size;
    flat_grads_.resize(total);
    std::size_t off = 0;
    for (const auto& p : params) {
      std::memcpy(flat_grads_.data() + off, p.grad, p.size * sizeof(real_t));
      off += p.size;
    }
    comm_.allreduce_sum(std::span<real_t>(flat_grads_));
    off = 0;
    for (const auto& p : params) {
      std::memcpy(p.grad, flat_grads_.data() + off, p.size * sizeof(real_t));
      off += p.size;
    }
  }

  Communicator& comm_;
  const TrainConfig& config_;
  const LocalPartition& lp_;
  const HaloPlan& plan_;
  SageModel model_;
  SoftmaxCrossEntropy loss_;
  Sgd optimizer_;

  BlockedCsr blocked_in_, blocked_out_;
  DenseMatrix features_, inv_norm_;
  std::vector<int> labels_;
  std::vector<std::uint8_t> train_mask_, val_mask_, test_mask_;
  std::int64_t global_train_count_ = 0;

  std::vector<DenseMatrix> acts_, aggs_;
  DenseMatrix d_upper_, dscaled_, dH_;
  std::vector<real_t> flat_grads_;

  // cd-r staleness caches (kCache policy), per layer.
  std::vector<DenseMatrix> root_extra_, leaf_total_;
  std::vector<std::vector<std::uint8_t>> root_has_, leaf_has_;
};

}  // namespace

double DistTrainResult::mean_epoch_seconds(int skip) const {
  double sum = 0.0;
  int count = 0;
  for (std::size_t e = static_cast<std::size_t>(skip); e < epochs.size(); ++e) {
    sum += epochs[e].total_seconds;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

double DistTrainResult::mean_local_agg_seconds(int skip) const {
  double sum = 0.0;
  int count = 0;
  for (std::size_t e = static_cast<std::size_t>(skip); e < epochs.size(); ++e) {
    sum += epochs[e].local_agg_seconds;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

double DistTrainResult::mean_remote_agg_seconds(int skip) const {
  double sum = 0.0;
  int count = 0;
  for (std::size_t e = static_cast<std::size_t>(skip); e < epochs.size(); ++e) {
    sum += epochs[e].remote_agg_seconds;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

DistTrainResult train_distributed(const Dataset& dataset, const PartitionedGraph& pg,
                                  const TrainConfig& config) {
  const int num_bins = config.algorithm == Algorithm::kCdR ? std::max(1, config.delay) : 1;
  const std::vector<HaloPlan> plans = build_halo_plans(pg, num_bins);

  DistTrainResult result;
  result.epochs.resize(static_cast<std::size_t>(config.epochs));

  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const int threads_per_rank =
      config.threads_per_rank > 0
          ? config.threads_per_rank
          : std::max(1, hw_threads / std::max(1, static_cast<int>(pg.num_parts)));

  World world(pg.num_parts);
  world.run([&](Communicator& comm) {
    par::set_num_threads(threads_per_rank);
    RankTrainer trainer(comm, dataset, pg, plans, config);

    for (int e = 0; e < config.epochs; ++e) {
      comm.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      double lat = 0.0, rat = 0.0;
      const double loss = trainer.train_epoch_body(e, lat, rat);
      double total = seconds_since(t0);

      // Record the slowest rank's phase times (the paper plots per-epoch
      // times of the whole machine, which the stragglers define).
      std::array<real_t, 3> times{static_cast<real_t>(lat), static_cast<real_t>(rat),
                                  static_cast<real_t>(total)};
      comm.allreduce_max(std::span<real_t>(times));
      if (comm.rank() == 0) {
        auto& rec = result.epochs[static_cast<std::size_t>(e)];
        rec.loss = loss;
        rec.local_agg_seconds = times[0];
        rec.remote_agg_seconds = times[1];
        rec.total_seconds = times[2];
      }
    }

    const auto acc = trainer.evaluate_all();
    const auto bytes = comm.allgather(static_cast<std::int64_t>(comm.stats().bytes_sent));
    const auto ar_bytes = comm.allgather(static_cast<std::int64_t>(comm.stats().allreduce_bytes));
    if (comm.rank() == 0) {
      result.train_accuracy = acc[0];
      result.val_accuracy = acc[1];
      result.test_accuracy = acc[2];
      for (const auto b : bytes) result.total_bytes_sent += static_cast<std::uint64_t>(b);
      for (const auto b : ar_bytes) result.allreduce_bytes += static_cast<std::uint64_t>(b);
    }
  });
  return result;
}

}  // namespace distgnn
