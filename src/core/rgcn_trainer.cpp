#include "core/rgcn_trainer.hpp"

#include <chrono>

namespace distgnn {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

RgcnTrainer::RgcnTrainer(const HeteroDataset& dataset, TrainConfig config)
    : dataset_(dataset),
      config_(config),
      rng_(config.seed),
      optimizer_(config.lr, config.momentum, config.weight_decay) {
  const int relations = dataset.graph.num_edge_types();
  const auto n = static_cast<std::size_t>(dataset.num_vertices());
  const int nb = config_.num_blocks > 0
                     ? config_.num_blocks
                     : auto_num_blocks(dataset.num_vertices(),
                                       static_cast<std::size_t>(dataset.feature_dim()));

  for (int r = 0; r < relations; ++r) {
    if (config_.ap_mode == ApMode::kOptimized) {
      blocked_in_.emplace_back(dataset.graph.in_csr(r), nb);
      blocked_out_.emplace_back(dataset.graph.out_csr(r), nb);
    }
    DenseMatrix inv(n, 1);
    for (std::size_t v = 0; v < n; ++v) {
      const eid_t deg = dataset.graph.in_degree(static_cast<vid_t>(v), r);
      inv.at(v, 0) = deg > 0 ? 1.0f / static_cast<real_t>(deg) : 0.0f;
    }
    inv_norms_.push_back(std::move(inv));
  }

  for (int l = 0; l < config.num_layers; ++l) {
    const std::size_t in = (l == 0) ? static_cast<std::size_t>(dataset.feature_dim())
                                    : static_cast<std::size_t>(config.hidden_dim);
    const std::size_t out = (l == config.num_layers - 1)
                                ? static_cast<std::size_t>(dataset.num_classes)
                                : static_cast<std::size_t>(config.hidden_dim);
    layers_.emplace_back(in, out, relations, /*apply_relu=*/l != config.num_layers - 1, rng_);
  }

  acts_.resize(static_cast<std::size_t>(config.num_layers) + 1);
  acts_[0] = dataset.features;
  aggs_.assign(static_cast<std::size_t>(config.num_layers),
               std::vector<DenseMatrix>(static_cast<std::size_t>(relations)));
  dscaled_rel_.resize(static_cast<std::size_t>(relations));
}

std::vector<ParamRef> RgcnTrainer::params() {
  std::vector<ParamRef> refs;
  for (RgcnLayer& layer : layers_) layer.collect_params(refs);
  return refs;
}

void RgcnTrainer::forward(bool timed, RgcnEpochStats* stats) {
  const auto n = static_cast<std::size_t>(dataset_.num_vertices());
  const int relations = num_relations();
  ApConfig ap;
  // Per-relation subgraphs are very sparse and degree-homogeneous (AM splits
  // ~6 in-edges over 4 relations), so dynamic scheduling only costs overhead
  // here — exactly the Figure 4 observation that DS pays off on *skewed*
  // graphs. Static scheduling with the vectorized micro-kernel wins.
  ap.dynamic_schedule = false;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < relations; ++r) {
      DenseMatrix& agg = aggs_[l][static_cast<std::size_t>(r)];
      agg.resize_discard(n, acts_[l].cols(), 0);
      if (config_.ap_mode == ApMode::kOptimized) {
        aggregate_prepartitioned(blocked_in_[static_cast<std::size_t>(r)], acts_[l].cview(), {},
                                 agg.view(), ap);
      } else {
        aggregate_baseline(dataset_.graph.in_csr(r), acts_[l].cview(), {}, agg.view(), ap.binary,
                           ap.reduce);
      }
    }
    if (timed) stats->ap_seconds += seconds_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    acts_[l + 1].resize_discard(n, layers_[l].out_dim());
    layers_[l].forward_from_aggregates(acts_[l].cview(), aggs_[l], inv_norms_,
                                       acts_[l + 1].view());
    if (timed) stats->mlp_seconds += seconds_since(t1);
  }
}

RgcnEpochStats RgcnTrainer::train_epoch() {
  RgcnEpochStats stats;
  const auto begin = std::chrono::steady_clock::now();
  const auto n = static_cast<std::size_t>(dataset_.num_vertices());
  const int relations = num_relations();
  ApConfig ap;
  ap.dynamic_schedule = false;

  forward(/*timed=*/true, &stats);

  auto t0 = std::chrono::steady_clock::now();
  stats.loss = loss_.forward(acts_.back().cview(), dataset_.labels, dataset_.train_mask);
  for (auto& layer : layers_) layer.zero_grad();
  d_upper_.resize_discard(n, acts_.back().cols());
  loss_.backward(d_upper_.view());
  stats.mlp_seconds += seconds_since(t0);

  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    t0 = std::chrono::steady_clock::now();
    dH_self_.resize_discard(n, layers_[static_cast<std::size_t>(l)].in_dim());
    layers_[static_cast<std::size_t>(l)].backward(d_upper_.cview(), dscaled_rel_, dH_self_.view());
    stats.mlp_seconds += seconds_since(t0);

    if (l == 0) break;

    // dH = dH_self + Σ_r A_rᵀ dscaled_rel[r].
    t0 = std::chrono::steady_clock::now();
    dH_ = dH_self_;
    scratch_.resize_discard(n, dH_.cols(), 0);
    for (int r = 0; r < relations; ++r) {
      scratch_.zero();
      if (config_.ap_mode == ApMode::kOptimized) {
        aggregate_prepartitioned(blocked_out_[static_cast<std::size_t>(r)],
                                 dscaled_rel_[static_cast<std::size_t>(r)].cview(), {},
                                 scratch_.view(), ap);
      } else {
        aggregate_baseline(dataset_.graph.out_csr(r),
                           dscaled_rel_[static_cast<std::size_t>(r)].cview(), {}, scratch_.view(),
                           ap.binary, ap.reduce);
      }
      const std::size_t total = dH_.size();
#pragma omp parallel for schedule(static)
      for (std::size_t i = 0; i < total; ++i) dH_.data()[i] += scratch_.data()[i];
    }
    stats.ap_seconds += seconds_since(t0);
    d_upper_ = dH_;
  }

  t0 = std::chrono::steady_clock::now();
  std::vector<ParamRef> params;
  for (auto& layer : layers_) layer.collect_params(params);
  optimizer_.step(params);
  stats.mlp_seconds += seconds_since(t0);

  stats.total_seconds = seconds_since(begin);
  return stats;
}

double RgcnTrainer::evaluate(const std::vector<std::uint8_t>& mask) {
  forward(/*timed=*/false, nullptr);
  return masked_accuracy(acts_.back().cview(), dataset_.labels, mask).accuracy();
}

}  // namespace distgnn
