// Distributed full-batch GraphSAGE training (§5): data-parallel model
// replicas, one rank per partition, with the three aggregation-communication
// algorithms of §5.3:
//
//   0c    — local partial aggregates only; no communication (the roofline).
//   cd-0  — every epoch, every split tree synchronizes: leaves push partial
//           aggregates to the root, the root reduces and pushes totals back.
//           Matches the single-socket forward exactly.
//   cd-r  — Delayed Remote Partial Aggregates (Alg. 4): split trees are
//           binned; each epoch only bin (e mod r) communicates, and its data
//           is consumed r epochs later, overlapping communication with
//           computation at the cost of staleness.
//
// Model replicas start from identical seeds and stay synchronized through a
// per-epoch gradient AllReduce (the paper's parameter sync).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "graph/datasets.hpp"
#include "partition/halo_plan.hpp"
#include "partition/partition_setup.hpp"

namespace distgnn {

struct DistEpochRecord {
  double loss = 0.0;            // global training loss
  double total_seconds = 0.0;   // slowest rank
  double local_agg_seconds = 0.0;   // LAT (forward pass), slowest rank
  double remote_agg_seconds = 0.0;  // RAT incl. pre/post-processing, slowest rank
};

struct DistTrainResult {
  std::vector<DistEpochRecord> epochs;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  std::uint64_t total_bytes_sent = 0;      // sum over ranks, whole run
  std::uint64_t allreduce_bytes = 0;       // sum over ranks

  /// Mean epoch time skipping the first `skip` epochs (the paper averages
  /// epochs 10-20 for cd-r because of the communication delay of 5).
  double mean_epoch_seconds(int skip = 0) const;
  double mean_local_agg_seconds(int skip = 0) const;
  double mean_remote_agg_seconds(int skip = 0) const;
};

/// Trains `config.epochs` epochs of GraphSAGE over the given partitioning,
/// one simulated socket (rank thread) per partition. The final accuracies
/// are measured with a fully synchronized (cd-0 style) forward pass so all
/// algorithms are scored on the true full-neighbourhood semantics.
DistTrainResult train_distributed(const Dataset& dataset, const PartitionedGraph& pg,
                                  const TrainConfig& config);

}  // namespace distgnn
