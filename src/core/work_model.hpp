// Analytic aggregation-work model behind Tables 7 and 8 of the paper.
//
// Work per hop = #destination vertices x average (sampled) degree x feature
// width, in operations. For mini-batch sampling (Dist-DGL) the per-hop
// vertex counts shrink toward the seeds and the degree is the fan-out; for
// full-batch DistGNN every partition vertex aggregates its complete
// neighbourhood at every hop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace distgnn {

struct HopWork {
  std::string label;
  std::int64_t vertices = 0;
  double avg_degree = 0.0;
  int feats = 0;

  /// Operations for this hop.
  double ops() const { return static_cast<double>(vertices) * avg_degree * feats; }
  double giga_ops() const { return ops() / 1e9; }
};

struct MiniBatchWork {
  std::vector<HopWork> hops;       // output-most hop first ("Hop-0" last, as in Table 7)
  double batch_ops = 0.0;          // one mini-batch
  std::int64_t batches_per_socket = 0;
  double socket_ops = 0.0;         // one epoch's share on one socket
};

/// Table 7: per-hop sampled vertex counts are supplied by the caller (the
/// paper measures them; tests use the paper's exact numbers).
MiniBatchWork minibatch_work(const std::vector<HopWork>& hops, std::int64_t train_vertices,
                             std::int64_t batch_size, int num_sockets);

struct FullBatchWork {
  std::vector<HopWork> hops;
  double socket_ops = 0.0;  // one partition == one socket's full batch
};

/// Table 8: every hop touches all partition vertices with the full average
/// degree; `feats_per_hop` is input-most first (f, h, h ... matching layers).
FullBatchWork fullbatch_work(std::int64_t partition_vertices, double avg_degree,
                             const std::vector<int>& feats_per_hop);

}  // namespace distgnn
