#include "core/sage_model.hpp"

#include <stdexcept>

namespace distgnn {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::k0c: return "0c";
    case Algorithm::kCd0: return "cd-0";
    case Algorithm::kCdR: return "cd-r";
  }
  return "?";
}

SageModel::SageModel(int feature_dim, int hidden_dim, int num_classes, int num_layers,
                     std::uint64_t seed) {
  if (num_layers < 1) throw std::invalid_argument("SageModel: num_layers must be >= 1");
  Rng rng(seed);
  for (int l = 0; l < num_layers; ++l) {
    const std::size_t in = (l == 0) ? static_cast<std::size_t>(feature_dim)
                                    : static_cast<std::size_t>(hidden_dim);
    const std::size_t out = (l == num_layers - 1) ? static_cast<std::size_t>(num_classes)
                                                  : static_cast<std::size_t>(hidden_dim);
    layers_.emplace_back(in, out, /*apply_relu=*/l != num_layers - 1, rng);
  }
}

std::vector<ParamRef> SageModel::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_) layer.collect_params(out);
  return out;
}

void SageModel::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

std::size_t SageModel::num_parameters() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.linear().num_parameters();
  return n;
}

}  // namespace distgnn
