// Full-batch GraphSAGE training on one socket (§4): the optimized AP drives
// the forward/backward aggregation; phase timers separate AP time from the
// MLP so the bench can print the Figure 2 "Total vs AP" comparison.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/sage_model.hpp"
#include "graph/datasets.hpp"
#include "kernels/aggregate.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "util/stopwatch.hpp"

namespace distgnn {

struct EpochStats {
  double loss = 0.0;
  double total_seconds = 0.0;
  double ap_seconds = 0.0;   // forward + backward aggregation time
  double mlp_seconds = 0.0;  // linear/activation/loss time
};

class SingleSocketTrainer {
 public:
  SingleSocketTrainer(const Dataset& dataset, TrainConfig config);

  EpochStats train_epoch();

  /// Forward-only accuracy with the current weights.
  double evaluate(const std::vector<std::uint8_t>& mask);

  SageModel& model() { return model_; }
  int effective_num_blocks() const { return num_blocks_; }

 private:
  void forward();

  const Dataset& dataset_;
  TrainConfig config_;
  SageModel model_;
  SoftmaxCrossEntropy loss_;
  Sgd optimizer_;
  int num_blocks_ = 1;

  BlockedCsr blocked_in_;    // optimized forward aggregation
  CsrMatrix out_csr_;        // backward (transpose) aggregation
  BlockedCsr blocked_out_;
  DenseMatrix inv_norm_;     // n x 1, 1/(in_degree+1)

  std::vector<DenseMatrix> acts_;  // acts_[0] = features; acts_[l+1] = layer l out
  std::vector<DenseMatrix> aggs_;  // forward aggregates per layer
  DenseMatrix d_upper_, dscaled_, dH_;
};

}  // namespace distgnn
