#include "core/single_socket_trainer.hpp"

#include <chrono>

namespace distgnn {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

SingleSocketTrainer::SingleSocketTrainer(const Dataset& dataset, TrainConfig config)
    : dataset_(dataset),
      config_(config),
      model_(dataset.feature_dim(), config.hidden_dim, dataset.num_classes, config.num_layers,
             config.seed),
      optimizer_(config.lr, config.momentum, config.weight_decay) {
  const CsrMatrix& in_csr = dataset.graph.in_csr();
  num_blocks_ = config_.num_blocks > 0
                    ? config_.num_blocks
                    : auto_num_blocks(dataset.num_vertices(),
                                      static_cast<std::size_t>(dataset.feature_dim()));
  if (config_.ap_mode == ApMode::kOptimized) {
    blocked_in_ = BlockedCsr(in_csr, num_blocks_);
    blocked_out_ = BlockedCsr(dataset.graph.out_csr(), num_blocks_);
  } else {
    out_csr_ = dataset.graph.out_csr();
  }

  const auto n = static_cast<std::size_t>(dataset.num_vertices());
  inv_norm_.resize_discard(n, 1);
  for (std::size_t v = 0; v < n; ++v)
    inv_norm_.at(v, 0) = 1.0f / (static_cast<real_t>(in_csr.degree(static_cast<vid_t>(v))) + 1.0f);

  acts_.resize(static_cast<std::size_t>(config_.num_layers) + 1);
  aggs_.resize(static_cast<std::size_t>(config_.num_layers));
  acts_[0] = dataset.features;
}

void SingleSocketTrainer::forward() {
  const auto n = static_cast<std::size_t>(dataset_.num_vertices());
  ApConfig ap;
  ap.binary = BinaryOp::kCopyLhs;
  ap.reduce = ReduceOp::kSum;
  for (int l = 0; l < config_.num_layers; ++l) {
    const auto li = static_cast<std::size_t>(l);
    aggs_[li].resize_discard(n, acts_[li].cols(), 0);
    if (config_.ap_mode == ApMode::kOptimized) {
      aggregate_prepartitioned(blocked_in_, acts_[li].cview(), {}, aggs_[li].view(), ap);
    } else {
      aggregate_baseline(dataset_.graph.in_csr(), acts_[li].cview(), {}, aggs_[li].view(),
                         ap.binary, ap.reduce);
    }
    acts_[li + 1].resize_discard(n, model_.layer(l).out_dim());
    model_.layer(l).forward_from_aggregate(acts_[li].cview(), aggs_[li].cview(), inv_norm_.cview(),
                                           acts_[li + 1].view());
  }
}

EpochStats SingleSocketTrainer::train_epoch() {
  EpochStats stats;
  const auto epoch_begin = std::chrono::steady_clock::now();
  const auto n = static_cast<std::size_t>(dataset_.num_vertices());

  // ---- forward (AP timed per layer) ----
  ApConfig ap;
  for (int l = 0; l < config_.num_layers; ++l) {
    const auto li = static_cast<std::size_t>(l);
    auto t0 = std::chrono::steady_clock::now();
    aggs_[li].resize_discard(n, acts_[li].cols(), 0);
    if (config_.ap_mode == ApMode::kOptimized) {
      aggregate_prepartitioned(blocked_in_, acts_[li].cview(), {}, aggs_[li].view(), ap);
    } else {
      aggregate_baseline(dataset_.graph.in_csr(), acts_[li].cview(), {}, aggs_[li].view(),
                         ap.binary, ap.reduce);
    }
    stats.ap_seconds += seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    acts_[li + 1].resize_discard(n, model_.layer(l).out_dim());
    model_.layer(l).forward_from_aggregate(acts_[li].cview(), aggs_[li].cview(), inv_norm_.cview(),
                                           acts_[li + 1].view());
    stats.mlp_seconds += seconds_since(t0);
  }

  // ---- loss ----
  auto t0 = std::chrono::steady_clock::now();
  stats.loss = loss_.forward(acts_.back().cview(), dataset_.labels, dataset_.train_mask);
  model_.zero_grad();
  d_upper_.resize_discard(n, acts_.back().cols());
  loss_.backward(d_upper_.view());
  stats.mlp_seconds += seconds_since(t0);

  // ---- backward ----
  for (int l = config_.num_layers - 1; l >= 0; --l) {
    t0 = std::chrono::steady_clock::now();
    dscaled_.resize_discard(n, model_.layer(l).in_dim());
    model_.layer(l).backward_to_scaled(d_upper_.cview(), dscaled_.view());
    stats.mlp_seconds += seconds_since(t0);

    if (l == 0) break;  // no gradient needed w.r.t. the input features

    // dH = dscaled + A^T dscaled (self + neighbour paths).
    t0 = std::chrono::steady_clock::now();
    dH_.resize_discard(n, dscaled_.cols(), 0);
    if (config_.ap_mode == ApMode::kOptimized) {
      aggregate_prepartitioned(blocked_out_, dscaled_.cview(), {}, dH_.view(), ap);
    } else {
      aggregate_baseline(out_csr_, dscaled_.cview(), {}, dH_.view(), ap.binary, ap.reduce);
    }
    const std::size_t total = dH_.size();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < total; ++i) dH_.data()[i] += dscaled_.data()[i];
    stats.ap_seconds += seconds_since(t0);
    d_upper_ = dH_;
  }

  t0 = std::chrono::steady_clock::now();
  auto params = model_.params();
  optimizer_.step(params);
  stats.mlp_seconds += seconds_since(t0);

  stats.total_seconds = seconds_since(epoch_begin);
  return stats;
}

double SingleSocketTrainer::evaluate(const std::vector<std::uint8_t>& mask) {
  forward();
  return masked_accuracy(acts_.back().cview(), dataset_.labels, mask).accuracy();
}

}  // namespace distgnn
