// GraphSAGE model: a stack of GraphSageLayer with parameter collection, the
// shape used throughout the paper's evaluation (GCN aggregation operator,
// 2-3 layers, hidden width 16/256).
#pragma once

#include <vector>

#include "core/config.hpp"
#include "nn/graphsage_layer.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace distgnn {

class SageModel {
 public:
  /// All ranks construct with the same seed so replicas start identical —
  /// the data-parallel invariant the gradient AllReduce preserves.
  SageModel(int feature_dim, int hidden_dim, int num_classes, int num_layers, std::uint64_t seed);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  GraphSageLayer& layer(int l) { return layers_[static_cast<std::size_t>(l)]; }

  std::vector<ParamRef> params();
  void zero_grad();

  /// Total scalar parameter count (for the allreduce-volume accounting).
  std::size_t num_parameters() const;

 private:
  std::vector<GraphSageLayer> layers_;
};

}  // namespace distgnn
