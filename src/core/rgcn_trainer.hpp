// Full-batch RGCN training on heterogeneous graphs — the Figure 2 "RGCN-
// hetero on AM" workload. One optimized AP invocation per relation per layer
// (each relation has its own CSR and blocked form); per-relation transpose
// aggregation closes the backward pass.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "graph/hetero.hpp"
#include "kernels/aggregate.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"
#include "nn/rgcn_layer.hpp"

namespace distgnn {

struct RgcnEpochStats {
  double loss = 0.0;
  double total_seconds = 0.0;
  double ap_seconds = 0.0;
  double mlp_seconds = 0.0;
};

class RgcnTrainer {
 public:
  RgcnTrainer(const HeteroDataset& dataset, TrainConfig config);

  RgcnEpochStats train_epoch();
  double evaluate(const std::vector<std::uint8_t>& mask);

  int num_relations() const { return dataset_.graph.num_edge_types(); }

  /// All trainable parameters in layer order (per layer: self weight, self
  /// bias, then one weight per relation) — the checkpoint order
  /// serve::ModelSnapshot's kRgcn loader expects.
  std::vector<ParamRef> params();

  /// Full-graph logits of the most recent forward pass (valid after
  /// train_epoch() or evaluate()); one row per vertex.
  ConstMatrixView logits() const { return acts_.back().cview(); }

 private:
  void forward(bool timed, RgcnEpochStats* stats);

  const HeteroDataset& dataset_;
  TrainConfig config_;
  Rng rng_;
  std::vector<RgcnLayer> layers_;
  SoftmaxCrossEntropy loss_;
  Sgd optimizer_;

  std::vector<BlockedCsr> blocked_in_;   // per relation
  std::vector<BlockedCsr> blocked_out_;  // per relation
  std::vector<DenseMatrix> inv_norms_;   // per relation, n x 1

  std::vector<DenseMatrix> acts_;                 // per layer
  std::vector<std::vector<DenseMatrix>> aggs_;    // [layer][relation]
  std::vector<DenseMatrix> dscaled_rel_;          // per relation scratch
  DenseMatrix d_upper_, dH_, dH_self_, scratch_;
};

}  // namespace distgnn
