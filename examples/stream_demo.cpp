// Streaming graph updates, end to end: start a server over a synthetic
// graph, accumulate live writes in a DeltaLog, seal them into epochs, and
// publish each sealed delta through the version barrier while open-loop
// read traffic keeps flowing — then prove freshness by checking a probe
// batch bitwise against a cold server built over the final graph.
//
//   ./stream_demo [--vertices=2048] [--deltas=16] [--write-rate=100]
//                 [--requests=1500] [--rate=2000] [--seed=1]
//
// Prints one line per published epoch (edge/feature counts, dirty-set size
// vs the full-flush equivalent), the mixed-loop summary (read QPS and tails
// alongside apply-latency quantiles), the freshness verdict, and the
// distgnn_stream_* counter scrape.
#include <cstdio>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "obs/expose.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/traffic_gen.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"
#include "stream/mixed_loop.hpp"
#include "util/options.hpp"

namespace {

using namespace distgnn;
using namespace distgnn::serve;
using namespace distgnn::stream;

Dataset rebuild_final(const Dataset& base, const std::vector<GraphDelta>& deltas) {
  Dataset cold = base;
  for (const GraphDelta& delta : deltas) apply_delta(cold, delta);
  return cold;
}

}  // namespace

int main(int argc, char** argv) {
  long long vertices = 2048, num_deltas = 16, requests = 1500, seed = 1;
  double write_rate = 100.0, read_rate = 2000.0;
  try {
    const Options opts(argc, argv);
    opts.require_known({"vertices", "deltas", "write-rate", "requests", "rate", "seed"});
    vertices = opts.get_int("vertices", vertices);
    num_deltas = opts.get_int("deltas", num_deltas);
    write_rate = opts.get_double("write-rate", write_rate);
    requests = opts.get_int("requests", requests);
    read_rate = opts.get_double("rate", read_rate);
    seed = opts.get_int("seed", seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream_demo: %s\n", e.what());
    return 2;
  }

  LearnableSbmParams params;
  params.num_vertices = static_cast<vid_t>(vertices);
  params.num_classes = 8;
  params.avg_degree = 16;
  params.feature_dim = 32;
  params.seed = 9;
  const Dataset base = make_learnable_sbm(params);

  ModelSpec spec;
  spec.kind = ModelKind::kSage;
  spec.feature_dim = base.feature_dim();
  spec.hidden_dim = 32;
  spec.num_classes = base.num_classes;
  spec.num_layers = 2;
  const auto snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);

  Dataset live_data = base;
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.fanouts = {10, 10};
  InferenceServer server(live_data, cfg);
  server.publish(snapshot);
  server.start();
  DeltaPublisher publisher(live_data, server);

  // Lifecycle 1/3 — log -> seal -> publish, one epoch at a time. The DeltaLog
  // is where writers would land in production; seal() snapshots the pending
  // writes into a numbered delta and resets the log.
  std::printf("== log -> seal -> publish ==\n");
  DeltaLog log;
  Rng rng(static_cast<std::uint64_t>(seed) ^ 0xfeedULL);
  const auto n = static_cast<std::uint64_t>(base.num_vertices());
  for (int round = 0; round < 3; ++round) {
    for (int w = 0; w < 4; ++w) {
      // Draw src before dst in sequenced statements — the freshness replay
      // below re-draws the same stream and must agree on the order.
      const auto src = static_cast<vid_t>(rng.next_below(n));
      const auto dst = static_cast<vid_t>(rng.next_below(n));
      log.insert_edge(src, dst);
    }
    std::vector<real_t> row(static_cast<std::size_t>(base.feature_dim()), 0.25f);
    log.update_feature(static_cast<vid_t>(rng.next_below(n)), row);
    const GraphDelta delta = log.seal();
    const std::uint64_t epoch = publisher.publish(delta);
    std::printf("  epoch %llu: +%zu edges, %zu feature rows, served epoch now %llu\n",
                static_cast<unsigned long long>(delta.epoch), delta.edge_inserts.size(),
                delta.feature_updates.size(), static_cast<unsigned long long>(epoch));
  }

  // Lifecycle 2/3 — a sustained write stream racing open-loop reads.
  std::printf("== mixed read+write loop ==\n");
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = static_cast<std::size_t>(num_deltas);
  stream_cfg.seed = static_cast<std::uint64_t>(seed) + 11;
  const std::vector<GraphDelta> stream = make_delta_stream(live_data, stream_cfg);
  std::vector<GraphDelta> replay = stream;
  for (std::size_t d = 0; d < replay.size(); ++d) replay[d].epoch = 0;  // publisher stamps

  MixedLoopConfig mixed;
  mixed.reads.process = ArrivalProcess::kPoisson;
  mixed.reads.rate = read_rate;
  mixed.reads.seed = static_cast<std::uint64_t>(seed);
  mixed.num_requests = static_cast<std::size_t>(requests);
  mixed.read_seed = static_cast<std::uint64_t>(seed);
  mixed.writes.process = ArrivalProcess::kMmpp;
  mixed.writes.rate = write_rate;
  mixed.writes.mmpp_rate0 = write_rate * 0.25;
  mixed.writes.mmpp_rate1 = write_rate * 4.0;
  mixed.writes.seed = static_cast<std::uint64_t>(seed) + 3;
  // Health layer over the write path: the publisher as a scrape source plus
  // the graph-epoch freshness probe (served epoch vs the log's sealed head).
  obs::HealthMonitor health;
  publisher.configure_health(health, log);
  health.on_event([](const obs::HealthEvent& event) {
    std::printf("health event: %s\n", event.detail.c_str());
  });
  health.start();
  const MixedLoopReport report = run_mixed_open_loop(server, publisher, replay, mixed);
  health.stop();
  std::printf("  %s\n", health.summary_line().c_str());
  const StreamStats stats = publisher.stats();
  std::printf(
      "  reads: %llu done, %.0f qps, p50 %.2fms p99 %.2fms | applies: p50 %.2fms p99 %.2fms\n",
      static_cast<unsigned long long>(report.reads.completed), report.reads.qps,
      report.reads.p50_ms, report.reads.p99_ms, report.apply_p50_ms, report.apply_p99_ms);
  std::printf("  %llu deltas -> epoch %llu; dirty entries %llu vs full-flush %llu (%.1f%%)\n",
              static_cast<unsigned long long>(stats.deltas_published),
              static_cast<unsigned long long>(report.final_epoch),
              static_cast<unsigned long long>(stats.dirty_entries),
              static_cast<unsigned long long>(stats.full_flush_equivalent),
              100.0 * static_cast<double>(stats.dirty_entries) /
                  static_cast<double>(stats.full_flush_equivalent ? stats.full_flush_equivalent
                                                                  : 1));

  // Lifecycle 3/3 — freshness: the streamed server vs a cold rebuild.
  Dataset final_data = base;
  {
    Dataset tmp = base;
    // The three hand-rolled epochs, replayed canonically from the same seed.
    Rng replay_rng(static_cast<std::uint64_t>(seed) ^ 0xfeedULL);
    for (int round = 0; round < 3; ++round) {
      GraphDelta delta;
      for (int w = 0; w < 4; ++w) {
        const auto src = static_cast<vid_t>(replay_rng.next_below(n));
        const auto dst = static_cast<vid_t>(replay_rng.next_below(n));
        delta.edge_inserts.push_back({src, dst, 0});
      }
      FeatureUpdate fu;
      fu.vertex = static_cast<vid_t>(replay_rng.next_below(n));
      fu.row.assign(static_cast<std::size_t>(base.feature_dim()), 0.25f);
      delta.feature_updates.push_back(fu);
      apply_delta(tmp, delta);
    }
    final_data = rebuild_final(tmp, stream);
  }
  InferenceServer cold(final_data, cfg);
  cold.publish(snapshot);
  cold.start();
  int mismatches = 0;
  for (vid_t i = 0; i < 32; ++i) {
    const vid_t v = (i * 61) % static_cast<vid_t>(n);
    if (server.infer_sync(v).logits != cold.infer_sync(v).logits) ++mismatches;
  }
  std::printf("== freshness probe: %s (%d/32 mismatches) ==\n",
              mismatches == 0 ? "bitwise-equal" : "MISMATCH", mismatches);
  cold.stop();

  obs::MetricsSnapshot scrape;
  publisher.scrape(scrape);
  std::printf("%s", obs::render_prometheus(scrape).c_str());
  server.stop();
  return mismatches == 0 ? 0 : 1;
}
