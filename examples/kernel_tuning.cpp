// Kernel tuning: sweep the cache-block count of the optimized Aggregation
// Primitive on a dataset and report the measured sweet spot next to the
// auto_num_blocks() heuristic — the workflow behind Table 3 / Figure 3.
//
//   ./kernel_tuning [--dataset=reddit-sim] [--scale=0.25] [--reps=5]
#include <chrono>
#include <cstdio>

#include "graph/datasets.hpp"
#include "kernels/aggregate.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::string name = opts.get("dataset", "reddit-sim");
  const double scale = opts.get_double("scale", 0.25);
  const int reps = static_cast<int>(opts.get_int("reps", 5));

  const Dataset ds = make_dataset(name, scale);
  const CsrMatrix& csr = ds.graph.in_csr();
  const auto n = static_cast<std::size_t>(ds.num_vertices());
  const auto d = static_cast<std::size_t>(ds.feature_dim());
  std::printf("dataset %s: |V|=%zu |E|=%lld d=%zu\n", name.c_str(), n,
              static_cast<long long>(ds.num_edges()), d);

  TextTable table({"nB", "AP time (ms)", "speedup vs nB=1"});
  double best = 1e30, nb1 = 0;
  int best_nb = 1;
  DenseMatrix out(n, d, 0);
  for (const int nb : {1, 2, 4, 8, 16, 32, 64}) {
    const BlockedCsr blocks(csr, nb);
    ApConfig cfg;
    aggregate_prepartitioned(blocks, ds.features.cview(), {}, out.view(), cfg);  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      out.zero();
      aggregate_prepartitioned(blocks, ds.features.cview(), {}, out.view(), cfg);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count() /
        reps;
    if (nb == 1) nb1 = ms;
    if (ms < best) {
      best = ms;
      best_nb = nb;
    }
    table.add_row({TextTable::fmt_int(nb), TextTable::fmt(ms, 2), TextTable::fmt(nb1 / ms, 2) + "x"});
  }
  std::printf("%s", table.render("Block-count sweep (copylhs/sum)").c_str());
  std::printf("measured best nB = %d; auto_num_blocks() heuristic = %d\n", best_nb,
              auto_num_blocks(ds.num_vertices(), d));
  return 0;
}
