// End-to-end serving demo: train GraphSAGE on a learnable synthetic graph,
// checkpoint it, load the checkpoint into an immutable ModelSnapshot, serve
// it through the micro-batching InferenceServer, and drive it with closed-
// and open-loop (Poisson + bursty MMPP) traffic — including a live hot-swap
// to a further-trained checkpoint mid-stream.
//
//   ./serve_demo [--vertices=2048] [--epochs=20] [--workers=2] [--batch=8]
//                [--delay-us=200] [--arrival=mmpp|poisson] [--rate=2000]
//                [--requests=400] [--clients=4] [--seed=1] [--zipf-s=0]
//                [--replicas=2] [--policy=p2c|round-robin|least-outstanding]
//                [--deadline-ms=20] [--low-frac=0.3] [--no-shed]
//                [--embed-cache-mb=32] [--shards=2] [--trace-rate=0.05]
//                [--metrics-out=metrics.prom] [--trace-out=traces.json]
//
// --zipf-s skews query popularity (0 = uniform); with a skewed workload the
// final stage serves the same checkpoint through the embedding-cached
// forward (EmbedForward + EmbedCache) cache-on vs cache-off and prints an
// "embed cache summary:" line with the hit rate and both p99s.
//
// After the single-server stages, the same snapshot goes to a replicated
// tier: a ReplicaGroup of --replicas servers fronted by a Router with the
// chosen load-balancing policy and deadline-aware admission control, driven
// by the same arrival process at the same rate. The final stage composes
// both scaling axes — a ComposedTier of --replicas ShardedServers over
// --shards vertex-cut shards each — publishes through the broadcast wire
// path, checks a probe batch bitwise against the single server, and drives
// the same arrival process through the grid ("composed summary:" line).
//
// Every tier runs with stage tracing at --trace-rate sampling. After the
// multi-tenant stage a "stage breakdown" table shows p50/p99 per serving
// stage per tenant straight from the registry scrape, and --metrics-out /
// --trace-out dump one combined scrape (composed tier + registry) as
// Prometheus text and the sampled requests as Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing).
//
// The last stage is multi-tenant: a ModelRegistry serving three model
// families at once (the trained SAGE, a GAT, an RGCN over a heterogeneous
// graph), each under its own SLO. Tenant A runs its nominal Poisson load
// while tenant B takes an MMPP overload capped by a token-bucket budget —
// the "multitenant summary:" line shows B shedding from its own lane while
// A's tail stays flat.
//
// Unknown flags are rejected (util/options strict mode) so typos fail loudly.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/single_socket_trainer.hpp"
#include "obs/expose.hpp"
#include "obs/health.hpp"
#include "graph/datasets.hpp"
#include "graph/hetero.hpp"
#include "nn/serialize.hpp"
#include "partition/libra.hpp"
#include "serve/composed_tier.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"
#include "serve/traffic_gen.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;
using namespace distgnn::serve;

namespace {

int run_demo(const Options& opts) {
  // Fail on a bad --policy value before any training work happens.
  const RoutePolicy policy = parse_route_policy(opts.get("policy", "p2c"));

  // 1. Train a model worth serving.
  LearnableSbmParams params;
  params.num_vertices = opts.get_int("vertices", 2048);
  params.num_classes = 8;
  params.avg_degree = 16;
  params.feature_dim = 32;
  const Dataset dataset = make_learnable_sbm(params);
  std::printf("dataset: |V|=%lld |E|=%lld features=%d classes=%d\n",
              static_cast<long long>(dataset.num_vertices()),
              static_cast<long long>(dataset.num_edges()), dataset.feature_dim(),
              dataset.num_classes);

  TrainConfig train_cfg;
  train_cfg.num_layers = 2;
  train_cfg.hidden_dim = 32;
  train_cfg.lr = 0.1;
  SingleSocketTrainer trainer(dataset, train_cfg);
  const int epochs = static_cast<int>(opts.get_int("epochs", 20));
  for (int e = 0; e < epochs; ++e) trainer.train_epoch();
  std::printf("trained %d epochs, test accuracy %.2f%%\n", epochs,
              100 * trainer.evaluate(dataset.test_mask));

  // 2. Checkpoint, then load the checkpoint into an immutable snapshot.
  const std::string ckpt = opts.get("checkpoint", "/tmp/distgnn_serve_demo.ckpt");
  auto trained_params = trainer.model().params();
  save_checkpoint(trained_params, ckpt);
  ModelSpec spec;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = train_cfg.hidden_dim;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = train_cfg.num_layers;
  auto snapshot_v1 = ModelSnapshot::from_checkpoint(spec, ckpt, /*version=*/1);
  std::printf("snapshot v1 loaded from %s\n", ckpt.c_str());

  // 3. Serve it.
  ServeConfig serve_cfg;
  serve_cfg.num_workers = static_cast<int>(opts.get_int("workers", 2));
  serve_cfg.max_batch = static_cast<int>(opts.get_int("batch", 8));
  serve_cfg.max_batch_delay = std::chrono::microseconds(opts.get_int("delay-us", 200));
  serve_cfg.fanouts = std::vector<int>(static_cast<std::size_t>(train_cfg.num_layers), 10);
  serve_cfg.sample_seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  serve_cfg.trace_sample_rate = opts.get_double("trace-rate", 0.05);
  InferenceServer server(dataset, serve_cfg);
  server.publish(snapshot_v1);
  server.start();

  const double zipf_s = opts.get_double("zipf-s", 0.0);
  TrafficGenerator traffic(server, serve_cfg.sample_seed, zipf_s);
  const int clients = std::max(1, static_cast<int>(opts.get_int("clients", 4)));
  const auto requests =
      static_cast<std::size_t>(std::max<long long>(1, opts.get_int("requests", 400)));
  std::vector<LoadReport> reports;
  reports.push_back(
      traffic.run_closed_loop(clients, std::max(1, static_cast<int>(requests) / clients)));

  // 4. Hot-swap to a further-trained checkpoint under live traffic, then
  //    drive the requested open-loop arrival process against v2.
  for (int e = 0; e < epochs / 2; ++e) trainer.train_epoch();
  trained_params = trainer.model().params();
  save_checkpoint(trained_params, ckpt);
  server.publish(ModelSnapshot::from_checkpoint(spec, ckpt, /*version=*/2));
  std::printf("hot-swapped to snapshot v2 (publishes so far: served %llu requests)\n",
              static_cast<unsigned long long>(server.stats().completed));

  ArrivalConfig arrivals;
  const std::string process = opts.get("arrival", "mmpp");
  arrivals.process = process == "poisson" ? ArrivalProcess::kPoisson : ArrivalProcess::kMmpp;
  arrivals.rate = opts.get_double("rate", 2000);
  arrivals.mmpp_rate0 = arrivals.rate / 4;
  arrivals.mmpp_rate1 = arrivals.rate * 4;
  reports.push_back(traffic.run_open_loop(arrivals, requests));

  std::printf("%s\n", render_load_reports(reports, "serving load (closed + open loop)").c_str());

  const ServerStats stats = server.stats();
  std::printf("feature cache: %llu accesses, hit rate %.3f, reuse %.2f, %llu bytes read\n",
              static_cast<unsigned long long>(stats.feature_cache.accesses),
              stats.feature_cache.hit_rate(), stats.feature_cache.reuse(),
              static_cast<unsigned long long>(stats.feature_cache.bytes_read));
  std::printf("micro-batching: %llu batches, mean %.2f, max %llu\n",
              static_cast<unsigned long long>(stats.batches), stats.mean_batch(),
              static_cast<unsigned long long>(stats.max_batch_seen));

  // Machine-greppable summary for CI smoke checks.
  const LoadReport& open = reports.back();
  std::printf("serving summary: QPS=%.0f p50_ms=%.3f p99_ms=%.3f rejected=%llu\n", open.qps,
              open.p50_ms, open.p99_ms, static_cast<unsigned long long>(open.rejected));

  // Reference answers for the composed tier's bitwise check (stage 7),
  // taken from the live single server before it goes away.
  std::vector<vid_t> probe;
  std::vector<std::vector<real_t>> probe_expected;
  for (vid_t v = 0; v < 16; ++v)
    probe.push_back((v * 131) % static_cast<vid_t>(dataset.num_vertices()));
  for (const vid_t v : probe) probe_expected.push_back(server.infer_sync(v).logits);
  server.stop();

  // 5. Replicated tier: the v2 snapshot published to a ReplicaGroup as one
  //    version-barriered group operation, fronted by a Router with deadline
  //    admission and a low-priority shed lane, under the same arrival
  //    process at the same offered rate.
  const int replicas = std::max(1, static_cast<int>(opts.get_int("replicas", 2)));
  ReplicaGroup group(dataset, serve_cfg, replicas);
  group.publish(server.snapshot());
  group.start();

  AdmissionConfig admission;
  admission.shed_deadlines = !opts.get_bool("no-shed", false);
  admission.low_priority_depth = serve_cfg.queue_capacity / 8;
  Router router(group, policy, admission);
  std::printf("replicated tier: %d replicas, %s routing, group version %llu\n", replicas,
              route_policy_name(policy).c_str(),
              static_cast<unsigned long long>(group.version()));

  // Closed-loop warmup primes the service-rate estimate admission divides by.
  std::vector<vid_t> warmup;
  for (vid_t v = 0; v < 32; ++v)
    warmup.push_back((v * 131) % static_cast<vid_t>(dataset.num_vertices()));
  (void)router.infer_batch(warmup);
  const RouterStats warmed = router.stats();  // report the measured run only

  RouterLoadConfig load;
  load.arrivals = arrivals;
  load.num_requests = requests;
  load.deadline_seconds = opts.get_double("deadline-ms", 20.0) * 1e-3;
  load.low_priority_fraction = opts.get_double("low-frac", 0.3);
  load.seed = serve_cfg.sample_seed;
  const LoadReport replicated = run_router_open_loop(router, load);
  group.stop();

  std::printf("%s\n",
              render_load_reports(std::vector<LoadReport>{replicated}, "replicated tier").c_str());
  const RouterStats rstats = router.stats().since(warmed);
  std::printf("admission: %llu admitted, shed %llu deadline / %llu priority / %llu queue-full\n",
              static_cast<unsigned long long>(rstats.admitted),
              static_cast<unsigned long long>(rstats.shed_deadline),
              static_cast<unsigned long long>(rstats.shed_priority),
              static_cast<unsigned long long>(rstats.shed_queue_full));
  std::printf("replicated summary: QPS=%.0f p99_ms=%.3f p99_9_ms=%.3f shed_rate=%.3f\n",
              replicated.qps, replicated.p99_ms, replicated.p999_ms, rstats.shed_rate());

  // 6. Embedding-cached serving: the same checkpoint through EmbedForward,
  //    cache-on vs cache-off, under (optionally Zipf-skewed) repeat queries.
  //    Same canonical sampling both ways, so answers match bitwise; only the
  //    redundant subtree work disappears on hits.
  const double zipf_bench_s = zipf_s > 0 ? zipf_s : 1.0;  // repeats need skew
  const int per_client = std::max(1, static_cast<int>(requests) / clients);
  const auto cache_mb = static_cast<std::uint64_t>(opts.get_int("embed-cache-mb", 32));
  std::vector<LoadReport> embed_reports;
  double embed_hit_rate = 0;
  for (const bool cache_on : {false, true}) {
    EmbedWorkloadReport run =
        run_embed_cache_workload(dataset, server.snapshot(), serve_cfg,
                                 cache_on ? cache_mb << 20 : 0, zipf_bench_s,
                                 serve_cfg.sample_seed, clients, per_client);
    run.load.label = cache_on ? "zipf/cache" : "zipf/no-cache";
    embed_reports.push_back(std::move(run.load));
    if (cache_on) embed_hit_rate = run.hit_rate;
  }
  std::printf("%s\n", render_load_reports(embed_reports,
                                          "embedding cache (Zipf s=" +
                                              std::to_string(zipf_bench_s) + ")")
                          .c_str());
  std::printf("embed cache summary: hit_rate=%.3f QPS_on=%.0f QPS_off=%.0f "
              "p99_on_ms=%.3f p99_off_ms=%.3f\n",
              embed_hit_rate, embed_reports[1].qps, embed_reports[0].qps,
              embed_reports[1].p99_ms, embed_reports[0].p99_ms);

  // 7. Composed tier: both scaling axes at once — R ShardedServer replicas
  //    over P vertex-cut shards, fronted by the same Router policy and
  //    admission control, published through the broadcast wire path. A probe
  //    batch is checked bitwise against the single server's answers before
  //    the open-loop run.
  const int shards = std::max(1, static_cast<int>(opts.get_int("shards", 2)));
  const EdgePartition partition =
      partition_libra(dataset.graph.coo(), static_cast<part_t>(shards));
  ComposedConfig composed_cfg;
  composed_cfg.replicas = replicas;
  composed_cfg.policy = policy;
  composed_cfg.admission = admission;
  composed_cfg.shard.max_batch = serve_cfg.max_batch;
  composed_cfg.shard.fanouts = serve_cfg.fanouts;
  composed_cfg.shard.sample_seed = serve_cfg.sample_seed;
  composed_cfg.shard.trace_sample_rate = serve_cfg.trace_sample_rate;
  composed_cfg.shard.queue_capacity = serve_cfg.queue_capacity;
  composed_cfg.shard.prefetch_depth = 2;
  ComposedTier tier(dataset, partition, composed_cfg);
  tier.publish(server.snapshot());  // v2, through the broadcast wire path
  tier.start();
  std::printf("composed tier: %d replicas x %d shards (%d serving ranks), %s routing, "
              "grid version %llu\n",
              tier.num_replicas(), tier.num_shards(), tier.concurrency(),
              route_policy_name(policy).c_str(),
              static_cast<unsigned long long>(tier.version()));

  // Bitwise probe doubles as the warmup priming the service-rate estimate.
  const auto probed = tier.infer_batch(probe);
  bool match = true;
  for (std::size_t i = 0; i < probe.size(); ++i)
    match = match && probed[i].has_value() && probed[i]->logits == probe_expected[i];
  const RouterStats composed_warmed = tier.router().stats();

  RouterLoadConfig composed_load = load;
  const LoadReport composed = run_router_open_loop(tier.router(), composed_load);
  tier.stop();

  std::printf("%s\n", render_load_reports(std::vector<LoadReport>{composed},
                                          "composed tier (replicated x sharded)")
                          .c_str());
  const RouterStats cstats = tier.router().stats().since(composed_warmed);
  std::printf("composed summary: QPS=%.0f p99_ms=%.3f p99_9_ms=%.3f shed_rate=%.3f match=%d\n",
              composed.qps, composed.p99_ms, composed.p999_ms, cstats.shed_rate(),
              match ? 1 : 0);

  // 8. Multi-tenant registry: three model families behind one front door,
  //    each with its own SLO, hot-swap lane, and token-bucket budget.
  //    Tenant A serves the trained v2 SAGE at its nominal rate while tenant
  //    B's GAT takes an MMPP overload ~4x its budget and tenant C answers
  //    relational (RGCN) queries — B's burst sheds at B's bucket, never A's.
  ModelRegistry registry;
  TenantSlo slo_a;
  slo_a.name = "alpha";
  const tenant_t tenant_a = registry.add_server(slo_a, dataset, serve_cfg);
  registry.publish(tenant_a, server.snapshot());

  TenantSlo slo_b;
  slo_b.name = "bravo";
  slo_b.rate_limit = arrivals.rate / 4;
  slo_b.burst = 32;
  const tenant_t tenant_b = registry.add_server(slo_b, dataset, serve_cfg);
  ModelSpec gat_spec = spec;
  gat_spec.kind = ModelKind::kGat;
  registry.publish(tenant_b, ModelSnapshot::random(gat_spec, /*seed=*/2, /*version=*/1));

  HeteroDatasetParams hetero_params;
  hetero_params.num_vertices = 1024;
  hetero_params.num_edge_types = 3;
  hetero_params.feature_dim = 16;
  hetero_params.seed = 7;
  const Dataset hetero = hetero_to_dataset(make_hetero_dataset(hetero_params));
  TenantSlo slo_c;
  slo_c.name = "charlie";
  const tenant_t tenant_c = registry.add_server(slo_c, hetero, serve_cfg);
  ModelSpec rgcn_spec;
  rgcn_spec.kind = ModelKind::kRgcn;
  rgcn_spec.feature_dim = hetero.feature_dim();
  rgcn_spec.hidden_dim = 16;
  rgcn_spec.num_classes = hetero.num_classes;
  rgcn_spec.num_layers = train_cfg.num_layers;
  rgcn_spec.num_relations = hetero.num_edge_types;
  registry.publish(tenant_c, ModelSnapshot::random(rgcn_spec, /*seed=*/3, /*version=*/1));
  registry.start();
  std::printf("multi-tenant registry: %d tenants (alpha=SAGE bravo=GAT charlie=RGCN), "
              "bravo budget %.0f req/s\n",
              registry.num_models(), registry.slo(tenant_b).rate_limit);

  TenantStream stream_a;
  stream_a.tenant = tenant_a;
  stream_a.arrivals.process = ArrivalProcess::kPoisson;
  stream_a.arrivals.rate = arrivals.rate / 2;
  stream_a.arrivals.seed = serve_cfg.sample_seed;
  stream_a.num_requests = requests;
  stream_a.seed = serve_cfg.sample_seed;

  TenantStream stream_b;  // the bursty neighbour, offered well above budget
  stream_b.tenant = tenant_b;
  stream_b.arrivals.process = ArrivalProcess::kMmpp;
  stream_b.arrivals.mmpp_rate0 = arrivals.rate / 4;
  stream_b.arrivals.mmpp_rate1 = arrivals.rate * 2;
  stream_b.arrivals.seed = serve_cfg.sample_seed + 1;
  stream_b.num_requests = requests;
  stream_b.seed = serve_cfg.sample_seed + 1;

  TenantStream stream_c;  // light relational trickle
  stream_c.tenant = tenant_c;
  stream_c.arrivals.process = ArrivalProcess::kPoisson;
  stream_c.arrivals.rate = arrivals.rate / 10;
  stream_c.arrivals.seed = serve_cfg.sample_seed + 2;
  stream_c.num_requests = std::max<std::size_t>(16, requests / 8);
  stream_c.seed = serve_cfg.sample_seed + 2;

  // Health layer over the registry: background scrape into ring-buffer time
  // series, SRE dual-window burn-rate per tenant SLO, stall watchdog over
  // the counter triples. Transitions print as they happen; the summary line
  // lands after the run.
  obs::HealthMonitor health;
  registry.configure_health(health);
  health.on_event([](const obs::HealthEvent& event) {
    std::printf("health event: %s\n", event.detail.c_str());
  });
  health.start();

  const TenantStream streams[] = {stream_a, stream_b, stream_c};
  const std::vector<LoadReport> tenant_reports = run_registry_open_loop(registry, streams);
  const BackendStats reg_stats = registry.stats();
  health.stop();
  std::printf("%s\n", health.summary_line().c_str());
  registry.stop();

  std::printf("%s\n", render_load_reports(tenant_reports,
                                          "multi-tenant registry (A nominal + B burst + C)")
                          .c_str());
  const TenantCounters& lane_a = reg_stats.tenants[static_cast<std::size_t>(tenant_a)];
  const TenantCounters& lane_b = reg_stats.tenants[static_cast<std::size_t>(tenant_b)];
  const TenantCounters& lane_c = reg_stats.tenants[static_cast<std::size_t>(tenant_c)];
  std::printf("multitenant summary: tenants=%d A_qps=%.0f A_p99_ms=%.3f A_shed=%llu "
              "B_shed_rate=%.3f C_completed=%llu\n",
              registry.num_models(), tenant_reports[0].qps, tenant_reports[0].p99_ms,
              static_cast<unsigned long long>(lane_a.shed), lane_b.shed_rate(),
              static_cast<unsigned long long>(lane_c.completed));

  // 9. Stage breakdown straight from the registry scrape: the per-stage
  //    histograms the leaf servers recorded where the work happened. One
  //    scrape walks every tenant's tower; rows are (tenant, stage) pairs
  //    that saw samples.
  obs::MetricsSnapshot reg_scrape;
  registry.scrape(reg_scrape);
  TextTable stage_table({"tenant", "stage", "count", "p50_ms", "p99_ms"});
  for (tenant_t t = 0; t < static_cast<tenant_t>(registry.num_models()); ++t) {
    for (int s = 0; s < obs::kNumStages; ++s) {
      const auto stage = static_cast<obs::Stage>(s);
      const obs::Labels labels{{"stage", obs::stage_name(stage)},
                               {"tenant", std::to_string(t)}};
      const obs::MetricPoint* point = reg_scrape.find("distgnn_server_stage_seconds", labels);
      if (point == nullptr || point->histogram.empty()) continue;
      stage_table.add_row({registry.slo(t).name, obs::stage_name(stage),
                           TextTable::fmt_int(static_cast<long long>(point->histogram.count)),
                           TextTable::fmt(point->histogram.quantile(0.5) * 1e3),
                           TextTable::fmt(point->histogram.quantile(0.99) * 1e3)});
    }
  }
  std::printf("%s\n", stage_table.render("stage breakdown (registry scrape)").c_str());

  // 10. Exposition: one combined scrape (composed tier's router -> group ->
  //     sharded ranks, plus the registry's edge counters and leaf servers)
  //     rendered to Prometheus text, and the sampled request traces to
  //     Chrome trace_event JSON.
  obs::MetricsSnapshot scrape_all;
  tier.scrape(scrape_all);
  scrape_all.merge(reg_scrape);
  const std::string metrics_out = opts.get("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << obs::render_prometheus(scrape_all);
    std::printf("metrics written: %s\n", metrics_out.c_str());
  }
  std::vector<obs::Trace> traces;
  tier.collect_traces(traces);
  registry.collect_traces(traces);
  const std::string trace_out = opts.get("trace-out", "");
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << obs::render_chrome_trace(traces);
    std::printf("traces written: %s\n", trace_out.c_str());
  }
  std::printf("observability summary: series=%zu traces=%zu router_completed=%.0f\n",
              scrape_all.points.size(), traces.size(),
              scrape_all.counter_total("distgnn_router_completed_total"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  try {
    opts.require_known({"vertices", "epochs", "workers", "batch", "delay-us", "arrival", "rate",
                        "requests", "clients", "seed", "checkpoint", "replicas", "policy",
                        "deadline-ms", "low-frac", "no-shed", "zipf-s", "embed-cache-mb",
                        "shards", "trace-rate", "metrics-out", "trace-out"});
    return run_demo(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_demo: %s\n", e.what());
    return 2;
  }
}
