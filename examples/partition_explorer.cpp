// Partition explorer: compare partitioning strategies on any registry
// dataset and inspect the quality metrics that drive distributed scaling
// (Table 4's replication factor, edge balance, split-vertex share).
//
//   ./partition_explorer [--dataset=reddit-sim] [--scale=0.125] [--parts=2,4,8,16]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "partition/libra.hpp"
#include "partition/partition_stats.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

namespace {

std::vector<part_t> parse_parts(const std::string& csv) {
  std::vector<part_t> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) out.push_back(static_cast<part_t>(std::stoi(item)));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::string name = opts.get("dataset", "reddit-sim");
  const double scale = opts.get_double("scale", 0.125);
  const auto parts = parse_parts(opts.get("parts", "2,4,8,16"));

  const Dataset ds = make_dataset(name, scale);
  const DegreeStats deg = in_degree_stats(ds.graph);
  std::printf("dataset %s: |V|=%lld |E|=%lld density=%.2e\n", name.c_str(),
              static_cast<long long>(ds.num_vertices()), static_cast<long long>(ds.num_edges()),
              ds.graph.density());
  std::printf("in-degree: mean %.1f  max %lld  gini %.3f (skew)\n", deg.mean,
              static_cast<long long>(deg.max), deg.gini);

  const struct {
    const char* label;
    PartitionStrategy strategy;
  } strategies[] = {
      {"libra (vertex-cut)", PartitionStrategy::kLibra},
      {"random edges", PartitionStrategy::kRandom},
      {"source hash", PartitionStrategy::kSourceHash},
      {"source range", PartitionStrategy::kRange},
  };

  for (const auto& s : strategies) {
    TextTable table({"partitions", "replication", "edge balance", "split vertices", "split share (%)"});
    for (const part_t p : parts) {
      const PartitionQuality q =
          evaluate_partition(ds.graph.coo(), partition_edges(ds.graph.coo(), p, s.strategy, 1));
      table.add_row({TextTable::fmt_int(p), TextTable::fmt(q.replication_factor, 3),
                     TextTable::fmt(q.edge_balance, 3), TextTable::fmt_int(q.split_vertices),
                     TextTable::fmt(100 * q.split_vertex_share, 1)});
    }
    std::printf("%s", table.render(s.label).c_str());
  }
  std::printf("\nLower replication => less halo communication; balance ~1.0 => even work.\n");
  return 0;
}
