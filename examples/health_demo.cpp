// Health & SLO engine demo / smoke: one HealthMonitor watching a full
// serving tower — a ModelRegistry fronting a ComposedTier (R replicas x P
// shards) — plus a DeltaPublisher's freshness probe, with every alert family
// driven on purpose:
//
//   1. An MMPP burst against a deliberately tight SLO deadline makes the
//      per-tenant burn rate overspend both SRE windows -> burn_rate fires;
//      the quiet period afterwards lets the fast window slide past the
//      burst -> burn_rate resolves.
//   2. A publish is wedged by holding an admission slot open across the
//      version barrier -> barrier_stuck fires; releasing the slot lets the
//      publish complete -> resolves.
//   3. Epochs are sealed into the DeltaLog without publishing -> epoch_lag
//      fires after the grace period; publishing the backlog resolves it.
//
// Alert transitions print as "health event:" lines the moment they happen
// (the registered callback), a "health summary:" one-liner lands after each
// phase, and the full structured state (active alerts + transition history)
// is written to --health-out as JSON. Exit code 0 iff every expected
// fire/resolve pair was observed — the CI observability smoke runs this
// binary and uploads the JSON artifact.
//
//   ./health_demo [--vertices=512] [--requests=1200] [--rate=3000]
//                 [--seed=1] [--shards=2] [--replicas=2]
//                 [--health-out=health.json]
//
// Unknown flags are rejected (util/options strict mode) so typos fail loudly.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "obs/expose.hpp"
#include "obs/health.hpp"
#include "partition/libra.hpp"
#include "serve/composed_tier.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/tier_config.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"
#include "util/options.hpp"
#include "util/sync.hpp"

using namespace distgnn;
using namespace distgnn::serve;

namespace {

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/// Thread-safe tally of fire/resolve transitions per rule, fed by the
/// monitor callback (which runs on the monitor's scrape thread).
struct EventTally {
  util::Mutex mutex;
  int fired[obs::kNumHealthRules] GUARDED_BY(mutex) = {};
  int resolved[obs::kNumHealthRules] GUARDED_BY(mutex) = {};

  void record(const obs::HealthEvent& event) {
    util::MutexLock lock(mutex);
    auto& slot = event.firing ? fired : resolved;
    ++slot[static_cast<std::size_t>(event.rule)];
  }
  int count(obs::HealthRule rule, bool firing) {
    util::MutexLock lock(mutex);
    return (firing ? fired : resolved)[static_cast<std::size_t>(rule)];
  }
  bool saw_pair(obs::HealthRule rule) {
    return count(rule, true) > 0 && count(rule, false) > 0;
  }
};

int run_demo(const Options& opts) {
  const auto vertices = opts.get_int("vertices", 512);
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 1200));
  const double rate = opts.get_double("rate", 3000.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const int shards = static_cast<int>(opts.get_int("shards", 2));
  const int replicas = static_cast<int>(opts.get_int("replicas", 2));
  const std::string health_out = opts.get("health-out", "health.json");

  // 1. The tower: registry -> composed tier (R x P grid). The SLO deadline
  //    is deliberately far below what a burst can meet, and deadline
  //    shedding is off so late requests complete (and violate) rather than
  //    shed — that is what the burn-rate rule measures.
  LearnableSbmParams params;
  params.num_vertices = vertices;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = static_cast<unsigned>(seed);
  const Dataset dataset = make_learnable_sbm(params);
  const EdgePartition partition =
      partition_libra(dataset.graph.coo(), static_cast<part_t>(shards));

  ModelSpec spec;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  const auto snapshot = ModelSnapshot::random(spec, seed, /*version=*/1);

  ComposedConfig composed_cfg;
  composed_cfg.replicas = replicas;
  composed_cfg.shard.max_batch = 8;
  composed_cfg.shard.fanouts = {6, 6};
  composed_cfg.admission.shed_deadlines = false;
  TenantSlo slo;
  slo.name = "alpha";
  slo.deadline_seconds = 1e-4;  // 100µs: a queued burst blows straight past it
  slo.slo_target = 0.999;
  composed_cfg.admission.tenants = {slo};

  ModelRegistry registry;
  auto tier_owned = std::make_unique<ComposedTier>(dataset, partition, composed_cfg);
  ComposedTier* tier = tier_owned.get();
  const tenant_t tenant = registry.add(slo, std::move(tier_owned));
  registry.publish(tenant, snapshot);
  registry.start();
  std::printf("tower: registry over %d x %d composed tier, tenant %s deadline %.0fµs\n",
              replicas, shards, slo.name.c_str(), slo.deadline_seconds * 1e6);

  // 2. The stream side: an InferenceServer fed by a DeltaPublisher, with a
  //    DeltaLog whose sealed head the freshness probe compares against.
  Dataset stream_data = dataset;
  ServeConfig stream_cfg;
  stream_cfg.num_workers = 1;
  stream_cfg.fanouts = {6, 6};
  InferenceServer stream_server(stream_data, stream_cfg);
  stream_server.publish(snapshot);
  stream_server.start();
  stream::DeltaLog log;
  stream::DeltaPublisher publisher(stream_data, stream_server);

  // 3. The monitor: tight windows so the demo runs in seconds. TierConfig
  //    carries the knobs (make_health_config maps them); the rest of the
  //    rule bounds are shortened to match.
  TierConfig knobs;
  knobs.health_scrape_period_seconds = 0.02;
  knobs.health_fast_window_seconds = 0.4;
  knobs.health_slow_window_seconds = 1.5;
  obs::HealthConfig health_cfg = make_health_config(knobs);
  health_cfg.barrier_timeout_seconds = 0.25;
  health_cfg.epoch_lag_grace_seconds = 0.3;
  health_cfg.stall_timeout_seconds = 0.8;
  obs::HealthMonitor monitor(health_cfg);
  registry.configure_health(monitor);
  tier->configure_health(monitor, "tier");
  publisher.configure_health(monitor, log, "stream");

  EventTally tally;
  monitor.on_event([&tally](const obs::HealthEvent& event) {
    tally.record(event);
    std::printf("health event: %s\n", event.detail.c_str());
    std::fflush(stdout);
  });
  monitor.start();

  // Phase 1 — MMPP burst overload: every completed request violates the
  // 100µs deadline, overspending both burn windows.
  std::printf("== phase 1: MMPP burst vs %s SLO ==\n", slo.name.c_str());
  TenantStream burst;
  burst.tenant = tenant;
  burst.arrivals.process = ArrivalProcess::kMmpp;
  burst.arrivals.rate = rate;
  burst.arrivals.mmpp_rate0 = rate * 0.5;
  burst.arrivals.mmpp_rate1 = rate * 4.0;
  burst.arrivals.seed = seed;
  burst.num_requests = requests;
  burst.seed = seed;
  const TenantStream streams[] = {burst};
  (void)run_registry_open_loop(registry, streams);
  registry.backend(tenant).drain();
  std::printf("%s\n", monitor.summary_line().c_str());

  // Quiet period: the fast window slides past the burst and the alert
  // resolves (the loop is a bounded wait, not a fixed sleep).
  for (int i = 0; i < 100 && !tally.saw_pair(obs::HealthRule::kBurnRate); ++i)
    sleep_seconds(0.05);
  std::printf("%s\n", monitor.summary_line().c_str());

  // Phase 2 — wedged publish barrier: hold an admission slot open, publish
  // from another thread, and let the watchdog catch the closed barrier.
  std::printf("== phase 2: wedged publish barrier ==\n");
  tier->group().begin_requests(1);
  auto snapshot_v2 = ModelSnapshot::random(spec, seed + 1, /*version=*/2);
  std::thread wedged_publish([&] { tier->publish(std::move(snapshot_v2)); });
  while (!tier->group().publishing()) std::this_thread::yield();
  for (int i = 0; i < 100 && tally.count(obs::HealthRule::kBarrierStuck, true) == 0; ++i)
    sleep_seconds(0.05);
  tier->group().end_request();  // release: the publish completes
  wedged_publish.join();
  for (int i = 0; i < 100 && !tally.saw_pair(obs::HealthRule::kBarrierStuck); ++i)
    sleep_seconds(0.05);
  std::printf("%s\n", monitor.summary_line().c_str());

  // Phase 3 — freshness lag: seal epochs without publishing, then publish
  // the backlog.
  std::printf("== phase 3: sealed epochs outrun the served epoch ==\n");
  std::vector<stream::GraphDelta> backlog;
  for (int i = 0; i < 4; ++i) {
    log.insert_edge(static_cast<vid_t>(i),
                    static_cast<vid_t>((i + 1) % dataset.num_vertices()));
    backlog.push_back(log.seal());
  }
  for (int i = 0; i < 100 && tally.count(obs::HealthRule::kEpochLag, true) == 0; ++i)
    sleep_seconds(0.05);
  for (const stream::GraphDelta& delta : backlog) publisher.publish(delta);
  for (int i = 0; i < 100 && !tally.saw_pair(obs::HealthRule::kEpochLag); ++i)
    sleep_seconds(0.05);
  std::printf("%s\n", monitor.summary_line().c_str());

  monitor.stop();
  stream_server.stop();
  registry.stop();

  // 4. Artifact + verdict.
  {
    std::ofstream out(health_out);
    out << obs::render_health_json(monitor);
  }
  std::printf("health state written to %s (%zu series, %llu ticks)\n", health_out.c_str(),
              monitor.num_series(), static_cast<unsigned long long>(monitor.ticks()));

  bool ok = true;
  const struct {
    obs::HealthRule rule;
    const char* name;
  } expected[] = {{obs::HealthRule::kBurnRate, "burn_rate"},
                  {obs::HealthRule::kBarrierStuck, "barrier_stuck"},
                  {obs::HealthRule::kEpochLag, "epoch_lag"}};
  for (const auto& check : expected) {
    const bool pair = tally.saw_pair(check.rule);
    std::printf("check %s: fired=%d resolved=%d %s\n", check.name,
                tally.count(check.rule, true), tally.count(check.rule, false),
                pair ? "OK" : "MISSING");
    ok = ok && pair;
  }
  std::printf("health summary: %s\n", monitor.summary_line().c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  try {
    opts.require_known(
        {"vertices", "requests", "rate", "seed", "shards", "replicas", "health-out"});
    return run_demo(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "health_demo: %s\n", e.what());
    return 2;
  }
}
