// Quickstart: generate a learnable graph, train full-batch GraphSAGE on one
// socket with the optimized Aggregation Primitive, and report accuracy.
//
//   ./quickstart [--vertices=4096] [--epochs=60] [--lr=0.1]
#include <cstdio>

#include "core/single_socket_trainer.hpp"
#include "graph/datasets.hpp"
#include "nn/serialize.hpp"
#include "util/options.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  // 1. A synthetic vertex-classification dataset with real signal: planted
  //    communities whose noisy feature centroids encode the labels.
  LearnableSbmParams params;
  params.num_vertices = opts.get_int("vertices", 4096);
  params.num_classes = 8;
  params.avg_degree = 16;
  params.feature_dim = 32;
  params.feature_noise = 1.0f;
  const Dataset dataset = make_learnable_sbm(params);
  std::printf("dataset: |V|=%lld |E|=%lld features=%d classes=%d\n",
              static_cast<long long>(dataset.num_vertices()),
              static_cast<long long>(dataset.num_edges()), dataset.feature_dim(),
              dataset.num_classes);

  // 2. GraphSAGE with the paper's GCN aggregation operator. The trainer
  //    builds the cache-blocked CSR once and reuses it every epoch.
  TrainConfig config;
  config.num_layers = 2;
  config.hidden_dim = 32;
  config.lr = opts.get_double("lr", 0.1);
  config.weight_decay = 5e-4;
  SingleSocketTrainer trainer(dataset, config);
  std::printf("aggregation primitive: optimized, %d cache blocks\n",
              trainer.effective_num_blocks());

  // 3. Train and watch the loss fall.
  const int epochs = static_cast<int>(opts.get_int("epochs", 60));
  for (int e = 0; e < epochs; ++e) {
    const EpochStats stats = trainer.train_epoch();
    if (e % 10 == 0 || e == epochs - 1)
      std::printf("epoch %3d  loss %.4f  (%.1f ms: %.1f ms aggregation, %.1f ms MLP)\n", e,
                  stats.loss, stats.total_seconds * 1e3, stats.ap_seconds * 1e3,
                  stats.mlp_seconds * 1e3);
  }

  // 4. Evaluate.
  std::printf("train accuracy: %.2f%%\n", 100 * trainer.evaluate(dataset.train_mask));
  const double test_acc = trainer.evaluate(dataset.test_mask);
  std::printf("test accuracy:  %.2f%%\n", 100 * test_acc);

  // 5. Checkpoint the trained model and prove the round trip: a freshly
  //    initialized replica restored from disk scores identically.
  const std::string ckpt = opts.get("checkpoint", "/tmp/distgnn_quickstart.ckpt");
  auto trained_params = trainer.model().params();
  save_checkpoint(trained_params, ckpt);
  SingleSocketTrainer restored(dataset, config);
  auto restored_params = restored.model().params();
  load_checkpoint(restored_params, ckpt);
  std::printf("restored-from-%s accuracy: %.2f%% (delta %.4f)\n", ckpt.c_str(),
              100 * restored.evaluate(dataset.test_mask),
              restored.evaluate(dataset.test_mask) - test_acc);
  return 0;
}
