// Distributed full-batch training across simulated sockets: partitions the
// graph with the Libra vertex-cut, builds the split-vertex halo plans and
// trains with one of the paper's three algorithms.
//
//   ./distributed_training [--ranks=4] [--algorithm=cd-r|cd-0|0c] [--delay=5]
//                          [--epochs=40] [--dataset=<registry name>]
#include <cstdio>
#include <string>

#include "core/distributed_trainer.hpp"
#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "partition/partition_stats.hpp"
#include "util/options.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));
  const std::string alg_name = opts.get("algorithm", "cd-r");

  // 1. Dataset: either a registry dataset (--dataset=ogbn-products-sim) or
  //    the default learnable SBM so accuracy means something.
  Dataset dataset;
  if (opts.has("dataset")) {
    dataset = make_dataset(opts.get("dataset", ""), opts.get_double("scale", 0.0625));
  } else {
    LearnableSbmParams p;
    p.num_vertices = opts.get_int("vertices", 4096);
    p.num_classes = 8;
    p.avg_degree = 16;
    p.feature_dim = 32;
    dataset = make_learnable_sbm(p);
  }
  std::printf("dataset %s: |V|=%lld |E|=%lld\n", dataset.name.c_str(),
              static_cast<long long>(dataset.num_vertices()),
              static_cast<long long>(dataset.num_edges()));

  // 2. Libra vertex-cut partitioning + split-vertex setup (§5.1-5.2).
  const EdgePartition ep = partition_libra(dataset.graph.coo(), ranks);
  const PartitionQuality quality = evaluate_partition(dataset.graph.coo(), ep);
  std::printf("partitions: %d  replication factor %.2f  edge balance %.3f  split vertices %lld\n",
              ranks, quality.replication_factor, quality.edge_balance,
              static_cast<long long>(quality.split_vertices));
  const PartitionedGraph pg = build_partitions(dataset.graph.coo(), ep, /*seed=*/1);

  // 3. Pick the algorithm (§5.3) and train.
  TrainConfig config;
  config.num_layers = 2;
  config.hidden_dim = 32;
  config.lr = opts.get_double("lr", 0.1);
  config.epochs = static_cast<int>(opts.get_int("epochs", 40));
  config.delay = static_cast<int>(opts.get_int("delay", 5));
  if (alg_name == "0c") config.algorithm = Algorithm::k0c;
  else if (alg_name == "cd-0") config.algorithm = Algorithm::kCd0;
  else config.algorithm = Algorithm::kCdR;
  const std::string precision = opts.get("precision", "fp32");
  if (precision == "bf16") config.halo_precision = HaloPrecision::kBf16;
  else if (precision == "fp16") config.halo_precision = HaloPrecision::kFp16;

  std::printf("training %s on %d simulated sockets (delay r=%d)...\n",
              to_string(config.algorithm).c_str(), ranks, config.delay);
  const DistTrainResult result = train_distributed(dataset, pg, config);

  for (std::size_t e = 0; e < result.epochs.size(); e += 10)
    std::printf("epoch %3zu  loss %.4f  %.2f ms/epoch (LAT %.2f ms, RAT %.2f ms)\n", e,
                result.epochs[e].loss, result.epochs[e].total_seconds * 1e3,
                result.epochs[e].local_agg_seconds * 1e3,
                result.epochs[e].remote_agg_seconds * 1e3);

  std::printf("final: test accuracy %.2f%%  mean epoch %.2f ms  halo bytes %.2f MB  "
              "allreduce bytes %.2f MB\n",
              100 * result.test_accuracy, result.mean_epoch_seconds(2) * 1e3,
              static_cast<double>(result.total_bytes_sent) / 1e6,
              static_cast<double>(result.allreduce_bytes) / 1e6);
  return 0;
}
