#!/usr/bin/env python3
"""Repo-invariant concurrency lint (see README "Concurrency correctness").

Pure-Python (stdlib only, no libclang) so it runs anywhere the repo builds.
Four rules, each with an explicit allowlist kept in this file so a reviewer
can see every exemption in one place:

  raw-primitive   No raw std::mutex / std::shared_mutex / std::condition_variable
                  / std::lock_guard / std::unique_lock / std::scoped_lock /
                  std::shared_lock anywhere outside src/util/sync.hpp. Shared
                  state goes through util::Mutex & friends so the clang
                  thread-safety annotations apply (GUARDED_BY is meaningless
                  on a std::mutex member nobody annotates).

  relaxed-order   std::memory_order_relaxed only in files audited for it.
                  Relaxed atomics are fine for monotonic stats counters but
                  are exactly how "benign" races creep in; new call sites must
                  be reviewed and the file added to the allowlist on purpose.

  callback-under-lock
                  In the publication/health files that invoke user-registered
                  callbacks, no callback call may happen while a lock guard is
                  live in an enclosing scope. A hook that fires under the
                  holder's mutex deadlocks the first caller that re-enters the
                  holder (the SnapshotHolder publish hook and the health
                  monitor's on_event callbacks both copy-then-invoke outside
                  the lock for this reason).

  sleep-in-test   No std::this_thread::sleep_for in tests outside the audited
                  allowlist. Sleeping tests either flake (sleep too short) or
                  crawl (sleep too long); the allowlisted files use bounded
                  polling loops that were reviewed individually.

Exit status: 0 clean, 1 findings, 2 usage error. Each finding prints
`path:line: [rule] message` so editors and CI annotate it directly.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------- config

CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Directories scanned relative to the repo root.
SCAN_DIRS = ("src", "tests", "bench", "examples")

# Subtrees never scanned: the lint's own pass/fail corpus lives here, and its
# fail_* fixtures contain violations on purpose.
SKIP_DIRS = ("tests/lint_fixtures",)

# raw-primitive: the only file allowed to name the std primitives. (The
# <mutex> *header* is still allowed everywhere — std::once_flag lives there.)
RAW_PRIMITIVE_ALLOWLIST = {
    "src/util/sync.hpp",
}
RAW_PRIMITIVE_RE = re.compile(
    r"std\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

# relaxed-order: files audited for relaxed atomics (monotonic counters only).
RELAXED_ORDER_ALLOWLIST = {
    "src/obs/metrics.cpp",
    "src/obs/metrics.hpp",
    "src/obs/trace.cpp",
    "src/serve/inference_server.cpp",
    "src/serve/model_registry.cpp",
    "src/serve/replica_group.cpp",
    "src/serve/router.cpp",
    "src/serve/sharded_server.cpp",
    "src/util/log.cpp",
    # Test-side monotonic tallies (hit/served counters folded after join).
    "tests/embed_cache_test.cpp",
    "tests/stream_test.cpp",
}
RELAXED_ORDER_RE = re.compile(r"std\s*::\s*memory_order_relaxed\b")

# callback-under-lock: files that own user-registered callbacks, and the
# identifiers that invoke one. Guard declarations are matched structurally
# (util::MutexLock / WriterLock / ReaderLock); a callback call inside the
# guard's brace scope is a finding.
CALLBACK_FILES = {
    "src/obs/health.cpp": (r"callback", r"callbacks_\s*\[[^\]]*\]", r"on_event_"),
    "src/serve/model_snapshot.cpp": (r"hook", r"on_publish_"),
    "src/stream/delta_publisher.cpp": (r"hook", r"on_publish_", r"callback"),
}
GUARD_DECL_RE = re.compile(r"\butil\s*::\s*(?:MutexLock|WriterLock|ReaderLock)\s+(\w+)\s*[({]")

# sleep-in-test: tests audited to use sleeps only inside bounded polling
# loops (or to pace open-loop arrival schedules, which is the workload).
SLEEP_TEST_ALLOWLIST = {
    "tests/composed_test.cpp",
    "tests/embed_cache_test.cpp",
    "tests/serve_test.cpp",
    "tests/stream_test.cpp",
}
SLEEP_RE = re.compile(r"\bsleep_for\s*\(")

# --------------------------------------------------------------------------- lexing


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals and char literals, preserving
    newlines (and therefore line numbers) and brace structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(" ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------- rules


def check_raw_primitive(rel: str, code: str, findings: list[str]) -> None:
    if rel in RAW_PRIMITIVE_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), start=1):
        if RAW_PRIMITIVE_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [raw-primitive] raw std synchronization primitive; "
                f"use util::Mutex / util::CondVar from src/util/sync.hpp so the "
                f"thread-safety annotations apply"
            )


def check_relaxed_order(rel: str, code: str, findings: list[str]) -> None:
    if rel in RELAXED_ORDER_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), start=1):
        if RELAXED_ORDER_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [relaxed-order] memory_order_relaxed outside the "
                f"audited allowlist; review the ordering argument and add the file "
                f"to RELAXED_ORDER_ALLOWLIST in tools/lint_concurrency.py"
            )


def check_callback_under_lock(rel: str, code: str, findings: list[str]) -> None:
    patterns = CALLBACK_FILES.get(rel)
    if not patterns:
        return
    call_re = re.compile(r"\b(?:" + "|".join(patterns) + r")\s*\(")
    # Track brace depth; remember the depth at which each live guard was
    # declared. A guard dies when depth drops below its declaration depth.
    depth = 0
    guard_depths: list[int] = []
    lambda_depths: list[int] = []  # lambda bodies defer execution: not a call site
    for lineno, line in enumerate(code.splitlines(), start=1):
        if GUARD_DECL_RE.search(line):
            guard_depths.append(depth)
        # A lambda introduced on this line defers everything inside its body.
        lambda_opens = len(re.findall(r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?\{", line))
        for _ in range(lambda_opens):
            lambda_depths.append(depth)
        if guard_depths and not lambda_depths and call_re.search(line):
            findings.append(
                f"{rel}:{lineno}: [callback-under-lock] callback invoked while a lock "
                f"guard is live; copy the callback under the lock and invoke it "
                f"after the guard's scope closes"
            )
        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while guard_depths and depth <= guard_depths[-1]:
                    guard_depths.pop()
                while lambda_depths and depth <= lambda_depths[-1]:
                    lambda_depths.pop()


def check_sleep_in_test(rel: str, code: str, findings: list[str]) -> None:
    if not rel.startswith("tests/") or rel in SLEEP_TEST_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), start=1):
        if SLEEP_RE.search(line):
            findings.append(
                f"{rel}:{lineno}: [sleep-in-test] sleep_for in a test outside the "
                f"audited allowlist; prefer condition variables or bounded polling, "
                f"and if the sleep is genuinely needed add the file to "
                f"SLEEP_TEST_ALLOWLIST in tools/lint_concurrency.py"
            )


# --------------------------------------------------------------------------- driver


def lint_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root).as_posix()
    code = strip_comments_and_strings(path.read_text(encoding="utf-8", errors="replace"))
    findings: list[str] = []
    check_raw_primitive(rel, code, findings)
    check_relaxed_order(rel, code, findings)
    check_callback_under_lock(rel, code, findings)
    check_sleep_in_test(rel, code, findings)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repo root to lint (default: the checkout containing this script)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint_concurrency: not a directory: {root}", file=sys.stderr)
        return 2

    files: list[Path] = []
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        files.extend(
            p
            for p in sorted(base.rglob("*"))
            if p.is_file()
            and p.suffix in CXX_EXTENSIONS
            and not any(
                p.relative_to(root).as_posix().startswith(skip + "/") for skip in SKIP_DIRS
            )
        )
    if not files:
        print(f"lint_concurrency: no C++ sources under {root}", file=sys.stderr)
        return 2

    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(root, path))

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_concurrency: {len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"lint_concurrency: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
