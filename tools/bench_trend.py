#!/usr/bin/env python3
"""Benchmark trend check: compare a google-benchmark JSON result against a
committed baseline and fail on tail-latency regressions.

Usage:
    tools/bench_trend.py --baseline bench/baselines/bench_serving.json \
        --current bench_serving.json [--max-regression 0.25]

Every benchmark present in BOTH files is compared on its latency-tail
counters (any counter whose name starts with "p99"). A counter that grew by
more than --max-regression (default 25%) over the baseline fails the check;
benchmarks or counters present on only one side are reported but do not
fail, so adding a benchmark does not require regenerating every baseline in
the same commit.

Baselines are captured on a quiet machine with the same flags CI uses
(`--seed=5 --benchmark_min_time=0.01`); regenerate with
`--benchmark_out=<baseline path> --benchmark_out_format=json` after an
intentional performance change, and say so in the commit message.

Stdlib only — no pip installs on the runner.
"""

import argparse
import json
import sys

TAIL_PREFIX = "p99"


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) duplicate the underlying
        # samples; prefer the median when repetitions were used, else the
        # plain run.
        run_type = bench.get("run_type", "iteration")
        agg = bench.get("aggregate_name", "")
        if run_type == "aggregate" and agg != "median":
            continue
        name = bench["name"]
        if run_type == "aggregate":
            name = name.rsplit("_" + agg, 1)[0]
        out[name] = bench
    return out


def tail_counters(bench):
    return {
        key: value
        for key, value in bench.items()
        if key.startswith(TAIL_PREFIX) and isinstance(value, (int, float))
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum allowed fractional growth of a p99 counter (default 0.25)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    failures = []
    compared = 0
    for name in sorted(baseline):
        if name not in current:
            print(f"note: {name}: in baseline only, skipping")
            continue
        base_tails = tail_counters(baseline[name])
        curr_tails = tail_counters(current[name])
        for counter in sorted(base_tails):
            if counter not in curr_tails:
                print(f"note: {name}/{counter}: missing from current run, skipping")
                continue
            base, curr = base_tails[counter], curr_tails[counter]
            if base <= 0:
                continue
            compared += 1
            growth = curr / base - 1.0
            verdict = "ok"
            if growth > args.max_regression:
                verdict = "REGRESSION"
                failures.append((name, counter, base, curr, growth))
            print(
                f"{verdict:>10}  {name}/{counter}: "
                f"{base:.4f} -> {curr:.4f} ({growth:+.1%})"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name}: new benchmark, no baseline yet")

    if compared == 0:
        print("error: no comparable p99 counters between baseline and current")
        return 2
    if failures:
        print(f"\n{len(failures)} tail regression(s) beyond "
              f"{args.max_regression:.0%}:")
        for name, counter, base, curr, growth in failures:
            print(f"  {name}/{counter}: {base:.4f} -> {curr:.4f} ({growth:+.1%})")
        return 1
    print(f"\nall {compared} tail counters within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
